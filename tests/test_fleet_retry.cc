/**
 * @file
 * Deterministic unit tests of the fleet client's retry machinery
 * under a fake clock: backoff growth/cap/jitter, per-attempt
 * timeouts, hedged reads, deadline failure, duplicate suppression,
 * and quorum write acks. No servers here — the test scripts
 * placement and captures every request the client sends, then feeds
 * responses back at chosen virtual times.
 */

#include <gtest/gtest.h>

#include <vector>

#include "fleet/client.h"
#include "fleet/retry.h"

using namespace citadel;
using namespace citadel::fleet;

namespace {

// ---- RetryPolicy ---------------------------------------------------

TEST(RetryPolicy, BackoffIsDeterministic)
{
    RetryPolicy p;
    p.seed = 42;
    for (u32 attempt = 1; attempt < 6; ++attempt)
        EXPECT_EQ(p.backoff(7, attempt), p.backoff(7, attempt));
    // Different ops decorrelate (not all equal across a small sweep).
    bool differs = false;
    for (u64 op = 0; op < 16 && !differs; ++op)
        differs = p.backoff(op, 3) != p.backoff(op + 1, 3);
    EXPECT_TRUE(differs);
}

TEST(RetryPolicy, BackoffJitterStaysInWindow)
{
    RetryPolicy p;
    p.backoffBase = 4;
    p.backoffCap = 256;
    p.seed = 99;
    for (u64 op = 0; op < 64; ++op) {
        for (u32 attempt = 1; attempt < 10; ++attempt) {
            u64 window = p.backoffBase << (attempt - 1);
            window = std::min(window, p.backoffCap);
            const u64 d = p.backoff(op, attempt);
            EXPECT_GE(d, window / 2) << "op " << op << " a " << attempt;
            EXPECT_LT(d, std::max<u64>(window, 1) + 1);
        }
    }
}

TEST(RetryPolicy, BackoffGrowsThenCaps)
{
    RetryPolicy p;
    p.backoffBase = 8;
    p.backoffCap = 64;
    p.seed = 5;
    // Window sequence: 8, 16, 32, 64, 64, ... jitter keeps delays in
    // [w/2, w), so attempt 10's delay is bounded by the cap.
    EXPECT_LT(p.backoff(3, 1), 8u);
    EXPECT_GE(p.backoff(3, 4), 32u);
    EXPECT_LT(p.backoff(3, 40), 64u);
    EXPECT_GE(p.backoff(3, 40), 32u);
}

TEST(RetryPolicy, HugeAttemptOrdinalDoesNotOverflow)
{
    RetryPolicy p;
    p.backoffCap = 1024;
    const u64 d = p.backoff(1, 200); // 4 << 199 would overflow.
    EXPECT_LT(d, 1024u);
}

// ---- Scripted client harness ---------------------------------------

/** Captures every request the client emits, with placement scripted
 *  by the test. */
struct Harness
{
    std::vector<ServerIdx> placement{0, 1};
    std::vector<std::pair<Request, ServerIdx>> sent;
    FleetClient client;

    explicit Harness(const RetryPolicy &p, u32 replication = 2,
                     u32 quorum = 2)
        : client(p, replication, quorum, /*valueSalt=*/77)
    {
        client.connect(
            [this](u64, std::vector<ServerIdx> &out) {
                out = placement;
            },
            [this](const Request &r, ServerIdx s) {
                sent.emplace_back(r, s);
            });
    }

    Response okFor(std::size_t i) const
    {
        const auto &[req, server] = sent[i];
        Response resp;
        resp.op = req.op;
        resp.attempt = req.attempt;
        resp.replica = req.replica;
        resp.status = Status::Ok;
        resp.version = req.version;
        resp.value = req.value;
        resp.from = server;
        return resp;
    }
};

RetryPolicy
testPolicy()
{
    RetryPolicy p;
    p.attemptTimeout = 10;
    p.opDeadline = 200;
    p.backoffBase = 4;
    p.backoffCap = 32;
    p.maxAttempts = 4;
    p.hedgeAfter = 6;
    p.seed = 1234;
    return p;
}

TEST(FleetClient, ReadCompletesOnResponse)
{
    Harness h(testPolicy());
    // The test body plays the campaign loop's serial phase.
    ThreadRoleGrant serial(kSerialPhase);
    h.client.startRead(1, 50, /*now=*/0);
    ASSERT_EQ(h.sent.size(), 1u);
    EXPECT_EQ(h.sent[0].second, 0u); // Primary first.
    h.client.onResponse(h.okFor(0), 2);
    EXPECT_EQ(h.client.inflight(), 0u);
    EXPECT_EQ(h.client.counters().opsAcked, 1u);
    EXPECT_EQ(h.client.counters().hedges, 0u);
}

TEST(FleetClient, ReadHedgesAfterHedgeDelay)
{
    Harness h(testPolicy());
    // The test body plays the campaign loop's serial phase.
    ThreadRoleGrant serial(kSerialPhase);
    h.client.startRead(1, 50, 0);
    ASSERT_EQ(h.sent.size(), 1u);
    // Just before the hedge delay: nothing new.
    for (u64 t = 1; t < 6; ++t)
        h.client.tick(t);
    EXPECT_EQ(h.sent.size(), 1u);
    h.client.tick(6);
    ASSERT_EQ(h.sent.size(), 2u);
    EXPECT_EQ(h.sent[1].second, 1u); // Next replica.
    EXPECT_EQ(h.client.counters().hedges, 1u);

    // The hedge answers first: operation completes, hedgeWins counted.
    h.client.onResponse(h.okFor(1), 8);
    EXPECT_EQ(h.client.counters().opsAcked, 1u);
    EXPECT_EQ(h.client.counters().hedgeWins, 1u);
    // The primary's late answer is suppressed.
    h.client.onResponse(h.okFor(0), 9);
    EXPECT_EQ(h.client.counters().duplicatesSuppressed, 1u);
}

TEST(FleetClient, AttemptTimeoutBacksOffThenRetries)
{
    Harness h(testPolicy());
    // The test body plays the campaign loop's serial phase.
    ThreadRoleGrant serial(kSerialPhase);
    h.client.startRead(1, 50, 0);
    ASSERT_EQ(h.sent.size(), 1u);
    // Run past the attempt timeout (hedge fires on the way at t=6).
    for (u64 t = 1; t <= 10; ++t)
        h.client.tick(t);
    EXPECT_EQ(h.client.counters().attemptTimeouts, 1u);
    EXPECT_EQ(h.client.counters().retries, 1u);
    const std::size_t before = h.sent.size();

    // The retry is delayed by backoff(op=1, attempt=1) in [2, 4).
    RetryPolicy p = testPolicy();
    const u64 delay = p.backoff(1, 1);
    EXPECT_GE(delay, 2u);
    EXPECT_LT(delay, 4u);
    for (u64 t = 11; t < 10 + delay; ++t)
        h.client.tick(t);
    EXPECT_EQ(h.sent.size(), before); // Still backing off.
    h.client.tick(10 + delay);
    ASSERT_EQ(h.sent.size(), before + 1);
    // Second attempt rotates to the other replica.
    EXPECT_EQ(h.sent.back().second, 1u);
}

TEST(FleetClient, DeadlineFailsOperation)
{
    Harness h(testPolicy());
    // The test body plays the campaign loop's serial phase.
    ThreadRoleGrant serial(kSerialPhase);
    // No responses ever: the op must fail by its deadline, not hang.
    h.client.startRead(1, 50, 0);
    for (u64 t = 1; t <= 200; ++t)
        h.client.tick(t);
    EXPECT_EQ(h.client.inflight(), 0u);
    EXPECT_EQ(h.client.counters().opsFailed, 1u);
    EXPECT_EQ(h.client.counters().opsAcked, 0u);
    // Attempt budget respected: at most maxAttempts rounds, each of
    // which may add one hedge.
    EXPECT_LE(h.client.counters().attempts,
              2ull * testPolicy().maxAttempts);
    EXPECT_LE(h.client.counters().attemptTimeouts,
              static_cast<u64>(testPolicy().maxAttempts));
}

TEST(FleetClient, WriteFansOutAndAcksAtQuorum)
{
    Harness h(testPolicy());
    // The test body plays the campaign loop's serial phase.
    ThreadRoleGrant serial(kSerialPhase);
    h.client.startWrite(1, 50, 0);
    ASSERT_EQ(h.sent.size(), 2u); // One request per replica.
    EXPECT_EQ(h.sent[0].first.version, 1u);
    EXPECT_EQ(h.sent[0].first.value,
              FleetClient::valueFor(50, 1, 77));

    // First ack: no quorum yet.
    h.client.onResponse(h.okFor(0), 1);
    EXPECT_EQ(h.client.inflight(), 1u);
    EXPECT_EQ(h.client.counters().writesAcked, 0u);
    // Duplicate ack from the same server does not count twice.
    h.client.onResponse(h.okFor(0), 2);
    EXPECT_EQ(h.client.inflight(), 1u);
    // Second replica acks: quorum reached.
    h.client.onResponse(h.okFor(1), 3);
    EXPECT_EQ(h.client.inflight(), 0u);
    EXPECT_EQ(h.client.counters().writesAcked, 1u);
    ASSERT_EQ(h.client.ackedWrites().count(50), 1u);
    EXPECT_EQ(h.client.ackedWrites().at(50).version, 1u);
}

TEST(FleetClient, WriteRefanoutSkipsAckedReplicas)
{
    Harness h(testPolicy());
    // The test body plays the campaign loop's serial phase.
    ThreadRoleGrant serial(kSerialPhase);
    h.client.startWrite(1, 50, 0);
    ASSERT_EQ(h.sent.size(), 2u);
    h.client.onResponse(h.okFor(0), 1); // Replica 0 acked.

    // Attempt times out; after backoff the re-fan-out goes only to
    // the replica that has not acked.
    for (u64 t = 2; t <= 20; ++t)
        h.client.tick(t);
    ASSERT_GE(h.sent.size(), 3u);
    for (std::size_t i = 2; i < h.sent.size(); ++i)
        EXPECT_EQ(h.sent[i].second, 1u);
}

TEST(FleetClient, BusyTriggersBackoffNotInstantRetry)
{
    Harness h(testPolicy());
    // The test body plays the campaign loop's serial phase.
    ThreadRoleGrant serial(kSerialPhase);
    h.client.startRead(1, 50, 0);
    ASSERT_EQ(h.sent.size(), 1u);
    Response busy;
    busy.op = 1;
    busy.attempt = 0;
    busy.status = Status::Busy;
    busy.from = 0;
    h.client.onResponse(busy, 1);
    EXPECT_EQ(h.client.counters().busyRejections, 1u);
    EXPECT_EQ(h.sent.size(), 1u); // No same-tick hammering.
    EXPECT_EQ(h.client.counters().retries, 1u);
    for (u64 t = 2; t <= 8; ++t)
        h.client.tick(t);
    EXPECT_GE(h.sent.size(), 2u); // Retried after the backoff window.
}

TEST(FleetClient, ReadFailsOverImmediatelyOnDueData)
{
    Harness h(testPolicy());
    // The test body plays the campaign loop's serial phase.
    ThreadRoleGrant serial(kSerialPhase);
    h.client.startRead(1, 50, 0);
    ASSERT_EQ(h.sent.size(), 1u);
    Response due;
    due.op = 1;
    due.attempt = 0;
    due.status = Status::DueData;
    due.from = 0;
    h.client.onResponse(due, 1);
    // DUE at the primary is not a timeout: the client fails over to
    // the next replica in the same tick.
    ASSERT_EQ(h.sent.size(), 2u);
    EXPECT_EQ(h.sent[1].second, 1u);
    EXPECT_EQ(h.client.counters().dueFailovers, 1u);
}

TEST(FleetClient, EmptyPlacementFailsFast)
{
    Harness h(testPolicy());
    // The test body plays the campaign loop's serial phase.
    ThreadRoleGrant serial(kSerialPhase);
    h.placement.clear(); // Every server evicted.
    h.client.startRead(1, 50, 0);
    EXPECT_EQ(h.client.inflight(), 0u);
    EXPECT_EQ(h.client.counters().opsFailed, 1u);
}

TEST(FleetClient, FinishCountsUnresolved)
{
    Harness h(testPolicy());
    // The test body plays the campaign loop's serial phase.
    ThreadRoleGrant serial(kSerialPhase);
    h.client.startRead(1, 50, 0);
    h.client.startWrite(2, 60, 0);
    h.client.finish();
    EXPECT_EQ(h.client.counters().opsUnresolved, 2u);
    EXPECT_EQ(h.client.inflight(), 0u);
}

} // namespace
