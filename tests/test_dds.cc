/**
 * @file
 * Tests for DDS (Section VII): dual-granularity sparing decisions,
 * budget enforcement, escalation from rows to banks, and absorption of
 * faults in decommissioned banks.
 */

#include <gtest/gtest.h>

#include "citadel/dds.h"
#include "citadel/three_d_parity.h"
#include "fault_builders.h"

namespace citadel {
namespace {

using namespace testing_helpers;

class DdsTest : public ::testing::Test
{
  protected:
    SystemConfig cfg_;

    DdsScheme
    makeScheme(u32 rows = 4, u32 banks = 2)
    {
        DdsScheme s(std::make_unique<MultiDimParityScheme>(3), rows,
                    banks);
        s.reset(cfg_);
        return s;
    }
};

TEST_F(DdsTest, RowFaultSparedAtScrub)
{
    auto s = makeScheme();
    std::vector<Fault> active = {rowFault(0, 1, 2, 100)};
    s.onScrub(active);
    EXPECT_TRUE(active.empty());
    EXPECT_EQ(s.stats().rowsSpared, 1u);
    EXPECT_EQ(s.stats().banksSpared, 0u);
}

TEST_F(DdsTest, BitAndWordFaultsAreRowGrain)
{
    auto s = makeScheme();
    std::vector<Fault> active = {bitFault(0, 1, 2, 10, 1, 1),
                                 wordFault(0, 1, 2, 11, 1, 2)};
    s.onScrub(active);
    EXPECT_TRUE(active.empty());
    EXPECT_EQ(s.stats().rowsSpared, 2u);
}

TEST_F(DdsTest, TransientFaultsAreNotSpared)
{
    auto s = makeScheme();
    Fault t = rowFault(0, 1, 2, 100);
    t.transient = true;
    std::vector<Fault> active = {t};
    s.onScrub(active);
    // Transients are the scrubber's job, not DDS's.
    EXPECT_EQ(active.size(), 1u);
    EXPECT_EQ(s.stats().rowsSpared, 0u);
}

TEST_F(DdsTest, LargeFaultsGoToSpareBank)
{
    auto s = makeScheme();
    std::vector<Fault> active = {bankFault(0, 1, 2)};
    s.onScrub(active);
    EXPECT_TRUE(active.empty());
    EXPECT_EQ(s.stats().banksSpared, 1u);

    // Column faults span every row: bank granularity too.
    active = {columnFault(0, 1, 3, 5)};
    s.onScrub(active);
    EXPECT_TRUE(active.empty());
    EXPECT_EQ(s.stats().banksSpared, 2u);
}

TEST_F(DdsTest, SubArrayGoesToSpareBank)
{
    auto s = makeScheme();
    Fault sub = baseFault(FaultClass::SubArray, 0, 1);
    sub.bank = DimSpec::exact(2);
    const u32 full = (1u << 16) - 1;
    sub.row = DimSpec::masked(8192, full & ~4095u);
    std::vector<Fault> active = {sub};
    s.onScrub(active);
    EXPECT_TRUE(active.empty());
    EXPECT_EQ(s.stats().banksSpared, 1u);
    EXPECT_EQ(s.stats().rowsSpared, 0u);
}

TEST_F(DdsTest, FifthRowInBankEscalatesToBankSpare)
{
    auto s = makeScheme(4, 2);
    std::vector<Fault> active;
    for (u32 r = 0; r < 5; ++r)
        active.push_back(rowFault(0, 1, 2, 100 + r));
    s.onScrub(active);
    EXPECT_TRUE(active.empty());
    EXPECT_EQ(s.stats().rowsSpared, 4u);
    EXPECT_EQ(s.stats().banksSpared, 1u);
}

TEST_F(DdsTest, RowBudgetIsPerBank)
{
    auto s = makeScheme(1, 2);
    std::vector<Fault> active = {rowFault(0, 1, 2, 10),
                                 rowFault(0, 1, 3, 10),
                                 rowFault(0, 2, 2, 10)};
    s.onScrub(active);
    EXPECT_TRUE(active.empty());
    EXPECT_EQ(s.stats().rowsSpared, 3u); // one per distinct bank
}

TEST_F(DdsTest, BankBudgetIsPerStack)
{
    auto s = makeScheme(4, 2);
    std::vector<Fault> active = {bankFault(0, 1, 2), bankFault(0, 2, 3),
                                 bankFault(0, 3, 4)};
    s.onScrub(active);
    // Third bank fault in stack 0 has no spare bank left.
    EXPECT_EQ(active.size(), 1u);
    EXPECT_EQ(s.stats().banksSpared, 2u);
    EXPECT_EQ(s.stats().sparingDenied, 1u);

    // Stack 1 still has its own budget.
    std::vector<Fault> other = {bankFault(1, 1, 2)};
    s.onScrub(other);
    EXPECT_TRUE(other.empty());
}

TEST_F(DdsTest, ChannelFaultsCannotBeSpared)
{
    auto s = makeScheme();
    std::vector<Fault> active = {channelFault(0, 1)};
    s.onScrub(active);
    EXPECT_EQ(active.size(), 1u);
    EXPECT_EQ(s.stats().sparingDenied, 1u);
}

TEST_F(DdsTest, FaultsInSparedBankAbsorbed)
{
    auto s = makeScheme();
    std::vector<Fault> active = {bankFault(0, 1, 2)};
    s.onScrub(active);
    ASSERT_TRUE(active.empty());
    // A later fault inside the decommissioned bank is moot.
    EXPECT_TRUE(s.absorb(rowFault(0, 1, 2, 7)));
    EXPECT_TRUE(s.absorb(bitFault(0, 1, 2, 8, 1, 1)));
    // Other banks are unaffected.
    EXPECT_FALSE(s.absorb(rowFault(0, 1, 3, 7)));
}

TEST_F(DdsTest, PreventsAccumulationAcrossScrubs)
{
    // The headline DDS property: two bank faults in *different* scrub
    // windows survive because the first is spared before the second
    // arrives; without DDS they are fatal to 3DP.
    auto s = makeScheme();
    std::vector<Fault> active = {bankFault(0, 1, 2)};
    EXPECT_FALSE(s.uncorrectable(active));
    s.onScrub(active);
    active.push_back(bankFault(0, 2, 5));
    EXPECT_FALSE(s.uncorrectable(active));

    // Same two faults within one window: uncorrectable.
    MultiDimParityScheme bare(3);
    bare.reset(cfg_);
    EXPECT_TRUE(bare.uncorrectable(
        {bankFault(0, 1, 2), bankFault(0, 2, 5)}));
}

TEST_F(DdsTest, ResetClearsState)
{
    auto s = makeScheme(4, 1);
    std::vector<Fault> active = {bankFault(0, 1, 2)};
    s.onScrub(active);
    EXPECT_EQ(s.stats().banksSpared, 1u);
    s.reset(cfg_);
    EXPECT_EQ(s.stats().banksSpared, 0u);
    EXPECT_FALSE(s.absorb(rowFault(0, 1, 2, 7))); // no longer spared
    std::vector<Fault> again = {bankFault(0, 3, 4)};
    s.onScrub(again);
    EXPECT_TRUE(again.empty()); // budget restored
}

TEST_F(DdsTest, NameReflectsStack)
{
    auto s = makeScheme();
    EXPECT_EQ(s.name(), "DDS+3DP");
}

} // namespace
} // namespace citadel
