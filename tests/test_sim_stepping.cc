/**
 * @file
 * Differential tests for the event-driven stepping contract and the
 * parallel suite runner (DESIGN.md section 10): event stepping must be
 * bit-identical to the cycle-by-cycle oracle for every striping/RAS
 * configuration -- including with a live RAS datapath attached -- and
 * runSuiteParallel must reproduce runSuite exactly for any thread
 * count.
 */

#include <gtest/gtest.h>

#include <thread>

#include "bench_util.h"
#include "fault_builders.h"
#include "ras/live_datapath.h"
#include "sim/system_sim.h"

namespace citadel {
namespace {

using namespace testing_helpers;
using bench::identicalResults;

SimResult
runStepped(const char *bench, StripingMode mode, RasTraffic ras,
           SimStepping stepping)
{
    SimConfig cfg;
    cfg.striping = mode;
    cfg.ras = ras;
    cfg.stepping = stepping;
    cfg.insnsPerCore = 20'000;
    cfg.seed = 13;
    SystemSim sim(cfg, findBenchmark(bench));
    return sim.run();
}

TEST(SimStepping, EventMatchesCycleAcrossConfigSweep)
{
    for (const char *bench : {"mcf", "povray", "milc"}) {
        for (StripingMode mode :
             {StripingMode::SameBank, StripingMode::AcrossBanks,
              StripingMode::AcrossChannels}) {
            for (RasTraffic ras :
                 {RasTraffic::None, RasTraffic::ThreeDPCached,
                  RasTraffic::ThreeDPUncached}) {
                const SimResult cyc =
                    runStepped(bench, mode, ras, SimStepping::Cycle);
                const SimResult evt =
                    runStepped(bench, mode, ras, SimStepping::Event);
                EXPECT_TRUE(identicalResults(cyc, evt))
                    << bench << " mode=" << static_cast<int>(mode)
                    << " ras=" << static_cast<int>(ras)
                    << " cycles " << cyc.cycles << " vs " << evt.cycles;
                // Event stepping may only ever skip idle cycles, so
                // reported cycle counts must agree exactly.
                EXPECT_EQ(cyc.cycles, evt.cycles);
            }
        }
    }
}

/** tiny geometry + live datapath, one fresh hook per run. */
SimResult
runWithRas(SimStepping stepping, RasCounters *counters_out)
{
    SimConfig cfg;
    cfg.geom = StackGeometry::tiny();
    cfg.llcBytes = 1 << 14;
    cfg.cores = 2;
    cfg.insnsPerCore = 30'000;
    cfg.ras = RasTraffic::ThreeDPCached;
    cfg.stepping = stepping;
    cfg.seed = 9;

    LiveRasOptions opts;
    opts.scrubCycles = 4096; // compressed scrub fires mid-run
    LiveRasDatapath dp(cfg, opts);
    dp.scheduleFault(bankFault(0, 0, 0), 500);
    dp.scheduleFault(rowFault(0, 1, 1, 3), 2500);

    SystemSim sim(cfg, findBenchmark("mcf"));
    sim.attachRas(&dp);
    const SimResult res = sim.run();
    *counters_out = dp.counters();
    return res;
}

TEST(SimStepping, EventMatchesCycleWithLiveRasAttached)
{
    // The RAS hook's nextEventCycle must keep fault materialization
    // and scrub timestamps exact, so the whole correction history --
    // not just the cycle count -- is reproduced under skipping.
    RasCounters cyc_c, evt_c;
    const SimResult cyc = runWithRas(SimStepping::Cycle, &cyc_c);
    const SimResult evt = runWithRas(SimStepping::Event, &evt_c);

    EXPECT_TRUE(identicalResults(cyc, evt))
        << "cycles " << cyc.cycles << " vs " << evt.cycles;
    EXPECT_EQ(cyc_c.demandReads, evt_c.demandReads);
    EXPECT_EQ(cyc_c.ce, evt_c.ce);
    EXPECT_EQ(cyc_c.due, evt_c.due);
    EXPECT_EQ(cyc_c.sdc, evt_c.sdc);
    EXPECT_EQ(cyc_c.retries, evt_c.retries);
    EXPECT_EQ(cyc_c.faultsInjected, evt_c.faultsInjected);
    EXPECT_EQ(cyc_c.parityGroupReads, evt_c.parityGroupReads);
    EXPECT_GT(cyc_c.ce, 0u); // the sweep actually exercised correction
}

TEST(SimStepping, ParallelSuiteMatchesSerialForAnyThreadCount)
{
    SimConfig base;
    base.llcBytes = 1 << 16; // small LLC: fast warmup, real writebacks
    base.insnsPerCore = 3'000;

    const auto serial =
        bench::runSuite(StripingMode::AcrossBanks,
                        RasTraffic::ThreeDPCached, base.insnsPerCore,
                        /*verbose=*/false, base);
    ASSERT_FALSE(serial.empty());

    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());
    for (unsigned threads : {1u, 2u, hw}) {
        const auto parallel = bench::runSuiteParallel(
            StripingMode::AcrossBanks, RasTraffic::ThreeDPCached,
            base.insnsPerCore, threads, base);
        ASSERT_EQ(parallel.size(), serial.size()) << threads;
        for (const auto &[name, r] : serial) {
            ASSERT_TRUE(parallel.count(name)) << name;
            EXPECT_TRUE(identicalResults(r, parallel.at(name)))
                << name << " with " << threads << " threads";
        }
    }
}

} // namespace
} // namespace citadel
