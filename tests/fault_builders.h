/**
 * @file
 * Shared helpers for constructing faults in scheme tests.
 */

#ifndef CITADEL_TESTS_FAULT_BUILDERS_H
#define CITADEL_TESTS_FAULT_BUILDERS_H

#include "faults/fault.h"

namespace citadel {
namespace testing_helpers {

inline Fault
baseFault(FaultClass cls, u32 s, u32 ch)
{
    Fault f;
    f.cls = cls;
    f.stack = DimSpec::exact(s);
    f.channel = DimSpec::exact(ch);
    f.bank = DimSpec::wild();
    f.row = DimSpec::wild();
    f.col = DimSpec::wild();
    f.bit = DimSpec::wild();
    return f;
}

inline Fault
bitFault(u32 s, u32 ch, u32 b, u32 r, u32 c, u32 bit)
{
    Fault f = baseFault(FaultClass::Bit, s, ch);
    f.bank = DimSpec::exact(b);
    f.row = DimSpec::exact(r);
    f.col = DimSpec::exact(c);
    f.bit = DimSpec::exact(bit);
    return f;
}

inline Fault
wordFault(u32 s, u32 ch, u32 b, u32 r, u32 c, u32 word)
{
    Fault f = baseFault(FaultClass::Word, s, ch);
    f.bank = DimSpec::exact(b);
    f.row = DimSpec::exact(r);
    f.col = DimSpec::exact(c);
    f.bit = DimSpec::masked(word * 64, 0x1FF & ~63u);
    return f;
}

inline Fault
rowFault(u32 s, u32 ch, u32 b, u32 r)
{
    Fault f = baseFault(FaultClass::Row, s, ch);
    f.bank = DimSpec::exact(b);
    f.row = DimSpec::exact(r);
    return f;
}

inline Fault
columnFault(u32 s, u32 ch, u32 b, u32 c)
{
    Fault f = baseFault(FaultClass::Column, s, ch);
    f.bank = DimSpec::exact(b);
    f.col = DimSpec::exact(c);
    return f;
}

inline Fault
bankFault(u32 s, u32 ch, u32 b)
{
    Fault f = baseFault(FaultClass::Bank, s, ch);
    f.bank = DimSpec::exact(b);
    return f;
}

inline Fault
channelFault(u32 s, u32 ch)
{
    Fault f = baseFault(FaultClass::Channel, s, ch);
    f.fromTsv = true;
    return f;
}

inline Fault
dataTsvFault(u32 s, u32 ch, u32 tsv)
{
    Fault f = baseFault(FaultClass::DataTsv, s, ch);
    f.fromTsv = true;
    f.tsvIndex = TsvLane{tsv};
    f.bit = DimSpec::masked(tsv, 0xFF);
    return f;
}

/**
 * A fault inside the D1 parity store itself. The bit-true engine models
 * the parity bank as one extra (die, bank) unit at
 * (channel = geom.channelsPerStack + 1, bank = 0); by convention
 * parity-unit faults keep channel and bank exact so the analytic model
 * sees the same single-unit range.
 */
inline Fault
parityUnitFault(const StackGeometry &geom, FaultClass cls, u32 s)
{
    Fault f = baseFault(cls, s, geom.channelsPerStack + 1);
    f.bank = DimSpec::exact(0);
    return f;
}

inline Fault
parityRowFault(const StackGeometry &geom, u32 s, u32 r)
{
    Fault f = parityUnitFault(geom, FaultClass::Row, s);
    f.row = DimSpec::exact(r);
    return f;
}

inline Fault
parityBitFault(const StackGeometry &geom, u32 s, u32 r, u32 c, u32 bit)
{
    Fault f = parityUnitFault(geom, FaultClass::Bit, s);
    f.row = DimSpec::exact(r);
    f.col = DimSpec::exact(c);
    f.bit = DimSpec::exact(bit);
    return f;
}

inline Fault
addrTsvRowFault(u32 s, u32 ch, u32 row_bit, u32 stuck)
{
    Fault f = baseFault(FaultClass::AddrTsvRow, s, ch);
    f.fromTsv = true;
    f.tsvIndex = TsvLane{row_bit};
    f.row = DimSpec::masked(stuck << row_bit, 1u << row_bit);
    return f;
}

} // namespace testing_helpers
} // namespace citadel

#endif // CITADEL_TESTS_FAULT_BUILDERS_H
