/**
 * @file
 * Cross-cutting property tests: system-level invariants that must hold
 * across schemes, seeds and configurations, checked with small Monte
 * Carlo runs. These are the "no scheme composition can make things
 * worse" guarantees the Citadel stack is built on.
 */

#include <gtest/gtest.h>

#include "citadel/citadel.h"
#include "ecc/secded.h"

namespace citadel {
namespace {

constexpr u64 kTrials = 2500;

double
failProb(SystemConfig cfg, RasScheme &scheme, u64 seed)
{
    MonteCarlo mc(cfg);
    return mc.run(scheme, kTrials, seed).probFail().estimate;
}

class PropertyTest : public ::testing::TestWithParam<u64>
{
  protected:
    u64 seed() const { return GetParam(); }
};

TEST_P(PropertyTest, TsvSwapNeverHurts)
{
    SystemConfig cfg;
    cfg.tsvDeviceFit = 1430.0;
    for (StripingMode m :
         {StripingMode::SameBank, StripingMode::AcrossBanks,
          StripingMode::AcrossChannels}) {
        auto without = makeSymbolBaseline(m, false);
        auto with = makeSymbolBaseline(m, true);
        EXPECT_LE(failProb(cfg, *with, seed()),
                  failProb(cfg, *without, seed()) + 1e-9)
            << stripingModeName(m);
    }
}

TEST_P(PropertyTest, DdsNeverHurts)
{
    SystemConfig cfg;
    cfg.tsvDeviceFit = 1430.0;
    auto bare = makeParityOnly(3, true);
    auto with = makeCitadel();
    EXPECT_LE(failProb(cfg, *with, seed()),
              failProb(cfg, *bare, seed()) + 1e-9);
}

TEST_P(PropertyTest, MoreParityDimsNeverHurt)
{
    SystemConfig cfg;
    cfg.tsvDeviceFit = 0.0;
    double prev = 1.0;
    for (u32 dims : {1u, 2u, 3u}) {
        auto s = makeParityOnly(dims);
        const double p = failProb(cfg, *s, seed());
        EXPECT_LE(p, prev + 0.01) << "dims " << dims;
        prev = p;
    }
}

TEST_P(PropertyTest, FailureMonotoneInTsvRate)
{
    // Without repair, more TSV faults can only hurt.
    auto scheme = makeSymbolBaseline(StripingMode::AcrossChannels, false);
    double prev = -1.0;
    for (double fit : {0.0, 500.0, 2000.0, 8000.0}) {
        SystemConfig cfg;
        cfg.tsvDeviceFit = fit;
        const double p = failProb(cfg, *scheme, seed());
        EXPECT_GE(p, prev - 0.01) << "fit " << fit;
        prev = p;
    }
}

TEST_P(PropertyTest, FailureMonotoneInLifetime)
{
    auto scheme = makeParityOnly(3);
    double prev = -1.0;
    for (double years : {1.0, 3.0, 7.0, 14.0}) {
        SystemConfig cfg;
        cfg.lifetimeHours = years * kHoursPerYear;
        const double p = failProb(cfg, *scheme, seed());
        EXPECT_GE(p, prev - 0.01) << years << " years";
        prev = p;
    }
}

TEST_P(PropertyTest, ShorterScrubNeverHurtsCitadel)
{
    auto scheme = makeCitadel();
    SystemConfig slow;
    slow.tsvDeviceFit = 1430.0;
    slow.scrubHours = 24.0 * 30;
    SystemConfig fast = slow;
    fast.scrubHours = 12.0;
    EXPECT_LE(failProb(fast, *scheme, seed()),
              failProb(slow, *scheme, seed()) + 0.01);
}

TEST_P(PropertyTest, BiggerSpareBudgetsNeverHurt)
{
    SystemConfig cfg;
    cfg.tsvDeviceFit = 1430.0;
    CitadelOptions small;
    small.spareBanksPerStack = 1;
    CitadelOptions big;
    big.spareBanksPerStack = 8;
    auto s_small = makeCitadel(small);
    auto s_big = makeCitadel(big);
    EXPECT_LE(failProb(cfg, *s_big, seed()),
              failProb(cfg, *s_small, seed()) + 1e-9);
}

TEST_P(PropertyTest, CitadelBeatsEveryBaseline)
{
    SystemConfig cfg;
    cfg.tsvDeviceFit = 1430.0;
    auto cit = makeCitadel();
    const double p_cit = failProb(cfg, *cit, seed());

    SecdedScheme secded;
    auto bch = makeBchBaseline();
    auto raid = makeRaid5Baseline();
    auto ssc = makeSymbolBaseline(StripingMode::AcrossChannels, true);
    EXPECT_LE(p_cit, failProb(cfg, secded, seed()) + 1e-9);
    EXPECT_LE(p_cit, failProb(cfg, *bch, seed()) + 1e-9);
    EXPECT_LE(p_cit, failProb(cfg, *raid, seed()) + 1e-9);
    EXPECT_LE(p_cit, failProb(cfg, *ssc, seed()) + 1e-9);
}

TEST_P(PropertyTest, OrganizationIndependence)
{
    // Section II-C: Citadel protects HMC/Tezzaron-like organizations
    // as effectively as the HBM-like baseline.
    for (const StackGeometry &g :
         {StackGeometry::hbm(), StackGeometry::hmcLike(),
          StackGeometry::tezzaronLike()}) {
        SystemConfig cfg;
        cfg.geom = g;
        cfg.tsvDeviceFit = 1430.0;
        auto cit = makeCitadel();
        EXPECT_LT(failProb(cfg, *cit, seed()), 0.01) << g.describe();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Values(101u, 202u, 303u));

} // namespace
} // namespace citadel
