/**
 * @file
 * Soak-campaign determinism tests: the issue's acceptance criteria.
 *
 * A checkpointed + resumed campaign must be bit-identical (same state
 * fingerprint, same counters) to an uninterrupted run, across at least
 * two worker thread counts, with checkpoints cut at arbitrary
 * non-boundary hours. On top of that, the no-overclaim differential
 * invariant must hold across seeds for campaigns that inject both
 * data-plane and control-plane faults.
 *
 * Campaigns here are deliberately small (tiny geometry, fractional
 * years, boosted FIT rates): they exercise mechanisms, not reliability
 * estimates.
 */

#include <gtest/gtest.h>

#include "ras/soak.h"

namespace citadel {
namespace {

FitPair
scalePair(FitPair p, double s)
{
    p.transientFit *= s;
    p.permanentFit *= s;
    return p;
}

/** A half-year, two-shard campaign busy enough to exercise sparing,
 *  the ladder, and the control-plane scrub machinery in well under a
 *  second. */
SoakConfig
smallCampaign(u64 seed)
{
    SoakConfig cfg;
    cfg.sim.geom = StackGeometry::tiny();
    cfg.sim.llcBytes = 1 << 14;
    cfg.sim.cores = 2;
    cfg.years = 0.5;
    cfg.shards = 2;
    cfg.seed = seed;
    cfg.cyclesPerHour = 256;
    cfg.probesPerEpoch = 4;
    cfg.threads = 1;

    const double fit_scale = 20'000.0;
    FitTable t = FitTable::paper8Gb();
    t.bit = scalePair(t.bit, fit_scale);
    t.word = scalePair(t.word, fit_scale);
    t.column = scalePair(t.column, fit_scale);
    t.row = scalePair(t.row, fit_scale);
    t.bank = scalePair(t.bank, fit_scale);
    cfg.faults.rates = t;
    cfg.faults.tsvDeviceFit = 100'000.0;
    cfg.faults.metaFit = 2'000'000.0;
    return cfg;
}

u64
runToEndFingerprint(const SoakConfig &cfg)
{
    SoakCampaign campaign(cfg);
    campaign.runToEnd();
    return campaign.result().fingerprint;
}

TEST(SoakTest, CampaignActuallyExercisesTheMachinery)
{
    // Guard against the determinism tests passing vacuously on an
    // eventless campaign: this config must inject faults on both
    // planes and drive demand probes.
    SoakCampaign campaign(smallCampaign(1));
    campaign.runToEnd();
    const SoakResult r = campaign.result();
    EXPECT_GT(r.totals.faultsInjected, 0u);
    EXPECT_GT(r.totals.metaFaultsInjected, 0u);
    EXPECT_GT(r.totals.demandReads, 0u);
    EXPECT_EQ(r.shards, 2u);
    EXPECT_DOUBLE_EQ(r.hoursSimulated, campaign.lifetimeHours() * 2);
    EXPECT_TRUE(campaign.done());
}

TEST(SoakTest, ResultAggregatesShardsInOrder)
{
    SoakCampaign campaign(smallCampaign(2));
    campaign.runToEnd();
    const SoakResult r = campaign.result();
    u64 reads = 0, injected = 0, retired = 0;
    for (u32 s = 0; s < 2; ++s) {
        reads += campaign.shard(s).counters().demandReads;
        injected += campaign.shard(s).counters().faultsInjected;
        retired += campaign.shard(s).retirementMap()->retiredLines();
    }
    EXPECT_EQ(r.totals.demandReads, reads);
    EXPECT_EQ(r.totals.faultsInjected, injected);
    EXPECT_EQ(r.retiredLines, retired);
    EXPECT_LE(r.minCapacityFraction, 1.0);
    EXPECT_GE(r.minCapacityFraction, 0.0);
}

TEST(SoakTest, FingerprintIsIdenticalAcrossThreadCounts)
{
    // Acceptance: bit-identical across >= 2 thread counts. Shard work
    // depends only on (config, shard index); the pool must not leak
    // scheduling into results.
    SoakConfig one = smallCampaign(3);
    one.threads = 1;
    SoakConfig two = smallCampaign(3);
    two.threads = 2;
    SoakConfig four = smallCampaign(3);
    four.threads = 4;

    const u64 fp1 = runToEndFingerprint(one);
    EXPECT_EQ(fp1, runToEndFingerprint(two));
    EXPECT_EQ(fp1, runToEndFingerprint(four));
}

TEST(SoakTest, CheckpointResumeIsBitIdentical)
{
    const SoakConfig cfg = smallCampaign(4);

    // Uninterrupted reference.
    SoakCampaign reference(cfg);
    reference.runToEnd();
    const SoakResult want = reference.result();

    // Interrupted run: checkpoint at an arbitrary hour that aligns
    // with no probe, scrub, or fault boundary.
    SoakCampaign first(cfg);
    first.advanceTo(first.lifetimeHours() * 0.37);
    ByteSink ckpt;
    first.save(ckpt);

    SoakCampaign resumed(cfg);
    ByteSource src(ckpt.bytes());
    resumed.load(src);
    EXPECT_EQ(src.remaining(), 0u);
    EXPECT_DOUBLE_EQ(resumed.hoursDone(), first.hoursDone());
    resumed.runToEnd();

    const SoakResult got = resumed.result();
    EXPECT_EQ(got.fingerprint, want.fingerprint);
    EXPECT_EQ(got.totals.ce, want.totals.ce);
    EXPECT_EQ(got.totals.due, want.totals.due);
    EXPECT_EQ(got.totals.rowsSpared, want.totals.rowsSpared);
    EXPECT_EQ(got.totals.metaRecordsLost, want.totals.metaRecordsLost);
    EXPECT_EQ(got.totals.pagesOfflined, want.totals.pagesOfflined);
    EXPECT_EQ(got.retiredLines, want.retiredLines);

    // The interrupted original, aged the rest of the way itself, also
    // converges to the same state.
    first.runToEnd();
    EXPECT_EQ(first.result().fingerprint, want.fingerprint);
}

TEST(SoakTest, DoubleCheckpointAcrossThreadCountsStaysIdentical)
{
    // Checkpoint twice (second from a resumed campaign) and resume on
    // a different thread count: segmentation and scheduling must both
    // be invisible.
    SoakConfig cfg = smallCampaign(5);
    cfg.threads = 2;
    const u64 want = runToEndFingerprint(cfg);

    SoakCampaign a(cfg);
    a.advanceTo(a.lifetimeHours() * 0.21);
    ByteSink ck1;
    a.save(ck1);

    SoakConfig cfg1 = cfg;
    cfg1.threads = 1;
    SoakCampaign b(cfg1);
    ByteSource src1(ck1.bytes());
    b.load(src1);
    b.advanceTo(b.lifetimeHours() * 0.83);
    ByteSink ck2;
    b.save(ck2);

    SoakConfig cfg4 = cfg;
    cfg4.threads = 4;
    SoakCampaign c(cfg4);
    ByteSource src2(ck2.bytes());
    c.load(src2);
    c.runToEnd();
    EXPECT_EQ(c.result().fingerprint, want);
}

TEST(SoakTest, NoOverclaimAcrossSeedsWithControlPlaneFaults)
{
    // The differential invariant extended to control-plane campaigns:
    // across seeds, with RRT/BRT/TSV-register/parity-cache upsets
    // landing on top of data faults, the analytic model must never
    // claim correctable where the bit-true machine lost data.
    u64 meta_seen = 0;
    for (u64 seed : {11u, 12u, 13u}) {
        SoakCampaign campaign(smallCampaign(seed));
        campaign.runToEnd();
        const SoakResult r = campaign.result();
        EXPECT_EQ(r.totals.divergences, 0u) << "seed " << seed;
        EXPECT_EQ(r.totals.sdc, 0u) << "seed " << seed;
        meta_seen += r.totals.metaFaultsInjected;
    }
    EXPECT_GT(meta_seen, 0u); // the property was not tested vacuously
}

TEST(SoakTest, LoadRejectsMismatchedCampaignShape)
{
    SoakCampaign donor(smallCampaign(6));
    donor.advanceTo(donor.lifetimeHours() * 0.5);
    ByteSink ckpt;
    donor.save(ckpt);

    SoakConfig other = smallCampaign(6);
    other.shards = 3; // shape mismatch: must die, not misload
    SoakCampaign wrong(other);
    ByteSource src(ckpt.bytes());
    EXPECT_DEATH(wrong.load(src), "shard");
}

} // namespace
} // namespace citadel
