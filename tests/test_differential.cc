/**
 * @file
 * Differential property tests between the analytic Monte Carlo
 * evaluator (MultiDimParityScheme) and the bit-true ParityEngine, over
 * randomized fault sets that include faults landing in the D1 parity
 * bank itself.
 *
 * Two properties, matching the models' granularities:
 *
 *  1. No overclaim (every trial): whenever the analytic model calls a
 *     fault set correctable, the byte-level reconstruction must restore
 *     the golden image. The analytic model peels whole fault ranges,
 *     so it may be *conservative* (uncorrectable verdict for a set the
 *     line-granularity peel recovers) — that direction is safe and
 *     expected; the reverse would invalidate every Monte Carlo figure.
 *
 *  2. Exact equivalence at line granularity: decomposing the same
 *     fault set into its constituent single-line faults removes the
 *     granularity gap, and then the two independently implemented
 *     peels must agree exactly, both directions.
 *
 * Plus injector edge cases (zero rates, minimal geometry) and
 * configuration-validation death tests.
 */

#include <gtest/gtest.h>

#include "citadel/parity_engine.h"
#include "citadel/three_d_parity.h"
#include "common/rng.h"
#include "fault_builders.h"
#include "faults/injector.h"

namespace citadel {
namespace {

using namespace testing_helpers;

constexpr u32 kTrialsPerDim = 400; // x3 dims = 1200 fault sets

u32
pick(Rng &rng, u32 n)
{
    return static_cast<u32>(rng.below(n));
}

/** One random fault on the tiny geometry; ~30% hit the parity unit. */
Fault
randomFault(Rng &rng, const StackGeometry &g)
{
    const u32 rows = g.rowsPerBank;
    const u32 cols = g.linesPerRow();
    const u32 bits = g.bitsPerLine();
    const bool parity_unit = rng.uniform(0.0, 1.0) < 0.3;

    Fault f;
    if (parity_unit) {
        switch (pick(rng, 4)) {
          case 0:
            f = parityBitFault(g, 0, pick(rng, rows), pick(rng, cols),
                               pick(rng, bits));
            break;
          case 1:
            f = parityRowFault(g, 0, pick(rng, rows));
            break;
          case 2:
            f = parityUnitFault(g, FaultClass::Column, 0);
            f.col = DimSpec::exact(pick(rng, cols));
            break;
          default:
            f = parityUnitFault(g, FaultClass::Bank, 0);
            break;
        }
    } else {
        // Data faults may also land in the ECC die (channelsPerStack).
        const u32 ch = pick(rng, g.channelsPerStack + 1);
        const u32 b = pick(rng, g.banksPerChannel);
        switch (pick(rng, 5)) {
          case 0:
            f = bitFault(0, ch, b, pick(rng, rows), pick(rng, cols),
                         pick(rng, bits));
            break;
          case 1:
            f = wordFault(0, ch, b, pick(rng, rows), pick(rng, cols),
                          pick(rng, bits / 64));
            break;
          case 2:
            f = rowFault(0, ch, b, pick(rng, rows));
            break;
          case 3:
            f = columnFault(0, ch, b, pick(rng, cols));
            break;
          default:
            f = bankFault(0, ch, b);
            break;
        }
    }
    f.transient = rng.chance(0.3);
    return f;
}

/**
 * Decompose a fault set into single-line faults over the data dies,
 * the ECC die, and the parity unit (channel channelsPerStack + 1,
 * bank 0). Corruptness is line-granular, so a line fault stands in for
 * any fault bits within that line.
 */
std::vector<Fault>
decomposeToLines(const std::vector<Fault> &faults, const StackGeometry &g)
{
    std::vector<Fault> lines;
    auto addIfCovered = [&](u32 ch, u32 b, u32 r, u32 c) {
        for (const Fault &f : faults)
            if (f.channel.matches(ch) && f.bank.matches(b) &&
                f.row.matches(r) && f.col.matches(c)) {
                Fault lf;
                lf.stack = DimSpec::exact(0);
                lf.channel = DimSpec::exact(ch);
                lf.bank = DimSpec::exact(b);
                lf.row = DimSpec::exact(r);
                lf.col = DimSpec::exact(c);
                lines.push_back(lf);
                return;
            }
    };
    for (u32 ch = 0; ch <= g.channelsPerStack; ++ch)
        for (u32 b = 0; b < g.banksPerChannel; ++b)
            for (u32 r = 0; r < g.rowsPerBank; ++r)
                for (u32 c = 0; c < g.linesPerRow(); ++c)
                    addIfCovered(ch, b, r, c);
    for (u32 r = 0; r < g.rowsPerBank; ++r)
        for (u32 c = 0; c < g.linesPerRow(); ++c)
            addIfCovered(g.channelsPerStack + 1, 0, r, c);
    return lines;
}

class DifferentialTest : public ::testing::TestWithParam<u32>
{
};

TEST_P(DifferentialTest, AnalyticNeverOverclaimsAndLinesMatchExactly)
{
    const u32 dims = GetParam();
    const StackGeometry g = StackGeometry::tiny();

    SystemConfig cfg;
    cfg.geom = g;
    cfg.subArrayRows = 16;

    MultiDimParityScheme analytic(dims);
    analytic.reset(cfg);
    ParityEngine engine(g, /*seed=*/1234 + dims);

    // Line-decomposed analytic peels get expensive beyond this; sets
    // above the cap (bank faults, several columns) still run the
    // no-overclaim property.
    constexpr std::size_t kExactCap = 96;

    Rng rng(0xD1FFull * (dims + 1));
    u32 correctable = 0, uncorrectable = 0, with_parity_faults = 0;
    u32 exact_checked = 0, conservative = 0;

    for (u32 trial = 0; trial < kTrialsPerDim; ++trial) {
        const u32 n = 1 + pick(rng, 4);
        std::vector<Fault> faults;
        for (u32 i = 0; i < n; ++i)
            faults.push_back(randomFault(rng, g));
        for (const Fault &f : faults)
            if (f.channel.value == g.channelsPerStack + 1 &&
                f.channel.mask == 0xFFFFFFFFu)
                ++with_parity_faults;

        engine.restore();
        engine.corrupt(faults);

        const bool analytic_unc = analytic.uncorrectable(faults);
        const bool peel = engine.peelable(dims);

        // Property 1: no overclaim. Analytic "correctable" must mean
        // the bytes are genuinely recoverable.
        if (!analytic_unc) {
            ASSERT_TRUE(peel)
                << "dims=" << dims << " trial=" << trial << " n=" << n
                << " first=" << faults[0].describe();
        }
        if (analytic_unc && peel)
            ++conservative; // safe direction, expected occasionally

        // The peel predicate must match what byte-level reconstruction
        // actually achieves (verified against the golden image).
        ASSERT_EQ(engine.reconstruct(dims), peel)
            << "dims=" << dims << " trial=" << trial;

        // Property 2: at line granularity the models are equivalent.
        const std::vector<Fault> lines = decomposeToLines(faults, g);
        if (lines.size() <= kExactCap) {
            ++exact_checked;
            ASSERT_EQ(analytic.uncorrectable(lines), !peel)
                << "dims=" << dims << " trial=" << trial
                << " lines=" << lines.size()
                << " first=" << faults[0].describe();
        }

        analytic_unc ? ++uncorrectable : ++correctable;
    }

    // The corpus must genuinely exercise both verdicts, the faulty-
    // parity cases and the exact check, or the properties are vacuous.
    EXPECT_GT(correctable, kTrialsPerDim / 10);
    EXPECT_GT(uncorrectable, kTrialsPerDim / 20);
    EXPECT_GT(with_parity_faults, kTrialsPerDim / 4);
    EXPECT_GT(exact_checked, kTrialsPerDim / 4);
    (void)conservative; // informative only; may be 0 for some dims
}

INSTANTIATE_TEST_SUITE_P(AllDims, DifferentialTest,
                         ::testing::Values(1u, 2u, 3u));

TEST(DifferentialCorpus, InjectorSampledLifetimesAgree)
{
    // Beyond synthetic faults: whole sampled lifetimes from the real
    // injector (restricted to one stack) get the same treatment.
    const StackGeometry g = StackGeometry::tiny();
    SystemConfig cfg;
    cfg.geom = g;
    cfg.subArrayRows = 16;
    cfg.tsvDeviceFit = 1430.0;
    // Boost rates so short lifetimes still produce multi-fault sets.
    for (FitPair *p : {&cfg.rates.bit, &cfg.rates.word, &cfg.rates.column,
                       &cfg.rates.row, &cfg.rates.bank}) {
        p->transientFit *= 50.0;
        p->permanentFit *= 50.0;
    }

    FaultInjector inj(cfg);
    MultiDimParityScheme analytic(3);
    analytic.reset(cfg);
    ParityEngine engine(g, 99);

    Rng rng(2026);
    u32 nonempty = 0;
    for (u32 trial = 0; trial < 40; ++trial) {
        std::vector<Fault> faults;
        for (const Fault &f : inj.sampleLifetime(rng))
            if (f.stack.matches(0) && !f.fromTsv) {
                Fault local = f;
                local.stack = DimSpec::exact(0);
                faults.push_back(local);
            }
        if (faults.empty())
            continue;
        ++nonempty;

        engine.restore();
        engine.corrupt(faults);
        // No overclaim on real sampled lifetimes either.
        if (!analytic.uncorrectable(faults)) {
            ASSERT_TRUE(engine.reconstruct(3))
                << "trial=" << trial << " n=" << faults.size();
        }
    }
    EXPECT_GT(nonempty, 5u);
}

// ---------------------------------------------------------------------
// Injector edge cases.
// ---------------------------------------------------------------------

TEST(InjectorEdge, ZeroRatesSampleNothing)
{
    SystemConfig cfg;
    cfg.geom = StackGeometry::tiny();
    cfg.subArrayRows = 16;
    cfg.rates = FitTable{}; // all-zero FIT
    cfg.tsvDeviceFit = 0.0;

    FaultInjector inj(cfg);
    Rng rng(7);
    for (u32 trial = 0; trial < 20; ++trial)
        EXPECT_TRUE(inj.sampleLifetime(rng).empty());
}

TEST(InjectorEdge, MinimalGeometryStaysInBounds)
{
    StackGeometry g;
    g.stacks = 1;
    g.channelsPerStack = 1;
    g.banksPerChannel = 1;
    g.rowsPerBank = 16;
    g.rowBytes = 256;
    g.lineBytes = 64;

    SystemConfig cfg;
    cfg.geom = g;
    cfg.subArrayRows = 4;
    cfg.tsvDeviceFit = 1430.0;

    FaultInjector inj(cfg);
    Rng rng(11);
    u32 seen = 0;
    for (u32 trial = 0; trial < 200; ++trial)
        for (const Fault &f : inj.sampleLifetime(rng)) {
            ++seen;
            EXPECT_TRUE(f.stack.matches(0));
            // Channel may address the ECC die (index channelsPerStack).
            if (f.channel.mask == 0xFFFFFFFFu) {
                EXPECT_LE(f.channel.value, g.channelsPerStack);
            }
            if (f.bank.mask == 0xFFFFFFFFu) {
                EXPECT_LT(f.bank.value, g.banksPerChannel);
            }
            if (f.row.mask == 0xFFFFFFFFu) {
                EXPECT_LT(f.row.value, g.rowsPerBank);
            }
            if (f.col.mask == 0xFFFFFFFFu) {
                EXPECT_LT(f.col.value, g.linesPerRow());
            }
        }
    EXPECT_GT(seen, 0u);
}

// ---------------------------------------------------------------------
// Configuration validation.
// ---------------------------------------------------------------------

TEST(ConfigValidation, RejectsBadLifetimeAndScrub)
{
    SystemConfig cfg;
    cfg.lifetimeHours = 0.0;
    EXPECT_DEATH(cfg.validate(), "lifetimeHours");

    cfg = SystemConfig{};
    cfg.scrubHours = -1.0;
    EXPECT_DEATH(cfg.validate(), "scrubHours");
}

TEST(ConfigValidation, RejectsNegativeRates)
{
    SystemConfig cfg;
    cfg.tsvDeviceFit = -5.0;
    EXPECT_DEATH(cfg.validate(), "tsvDeviceFit");

    cfg = SystemConfig{};
    cfg.rates.row.permanentFit = -0.1;
    EXPECT_DEATH(cfg.validate(), "FIT rates");
}

TEST(ConfigValidation, RejectsBadSubArraySetup)
{
    SystemConfig cfg;
    cfg.subArrayFraction = 1.5;
    EXPECT_DEATH(cfg.validate(), "subArrayFraction");

    cfg = SystemConfig{};
    cfg.subArrayRows = 3;
    EXPECT_DEATH(cfg.validate(), "power of two");
}

TEST(ConfigValidation, RejectsZeroGeometryDimensions)
{
    SystemConfig cfg;
    cfg.geom.banksPerChannel = 0;
    EXPECT_DEATH(cfg.validate(), "non-zero");

    cfg = SystemConfig{};
    cfg.geom.lineBytes = 0;
    EXPECT_DEATH(cfg.validate(), "non-zero");
}

} // namespace
} // namespace citadel
