/**
 * @file
 * Tests for the synthetic workload table and address-stream generator.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/log.h"
#include "sim/workload.h"

namespace citadel {
namespace {

TEST(Workloads, FullSuiteRoster)
{
    // 29 SPEC CPU2006 + 7 PARSEC + 2 BioBench = 38 (Section III-B).
    const auto &all = allBenchmarks();
    EXPECT_EQ(all.size(), 38u);
    std::map<Suite, int> per_suite;
    std::set<std::string> names;
    for (const auto &b : all) {
        ++per_suite[b.suite];
        names.insert(b.name);
    }
    EXPECT_EQ(per_suite[Suite::SpecFp] + per_suite[Suite::SpecInt], 29);
    EXPECT_EQ(per_suite[Suite::Parsec], 7);
    EXPECT_EQ(per_suite[Suite::BioBench], 2);
    EXPECT_EQ(names.size(), 38u) << "duplicate benchmark names";
}

TEST(Workloads, ProfilesAreSane)
{
    for (const auto &b : allBenchmarks()) {
        EXPECT_GT(b.mpki, 0.0) << b.name;
        EXPECT_LT(b.mpki, 100.0) << b.name;
        EXPECT_GE(b.runLength, 1.0) << b.name;
        EXPECT_GE(b.writeFrac, 0.0) << b.name;
        EXPECT_LE(b.writeFrac, 1.0) << b.name;
        EXPECT_GE(b.footprintMB, 16u) << b.name;
    }
}

TEST(Workloads, PaperHighlightsPresent)
{
    // Benchmarks the paper's Fig 15 calls out.
    EXPECT_NO_FATAL_FAILURE(findBenchmark("GemsFDTD"));
    EXPECT_NO_FATAL_FAILURE(findBenchmark("mcf"));
    EXPECT_NO_FATAL_FAILURE(findBenchmark("mummer"));
    EXPECT_NO_FATAL_FAILURE(findBenchmark("tigr"));
    EXPECT_DEATH(findBenchmark("nonexistent"), "unknown benchmark");
}

TEST(Workloads, BioBenchIsReadDominatedAndRandom)
{
    // The property behind Fig 13's low BioBench parity hit rate.
    for (const char *name : {"tigr", "mummer"}) {
        const auto &b = findBenchmark(name);
        EXPECT_LT(b.writeFrac, 0.1) << name;
        EXPECT_LT(b.runLength, 2.0) << name;
        EXPECT_GT(b.mpki, 10.0) << name;
    }
}

TEST(Workloads, SuiteNames)
{
    EXPECT_STREQ(suiteName(Suite::SpecFp), "SPEC-FP");
    EXPECT_STREQ(suiteName(Suite::BioBench), "BIOBENCH");
}

TEST(AddressStream, StaysInCoreRegion)
{
    const auto &b = findBenchmark("mcf");
    const u64 total = (16ull << 30) / 64;
    for (u32 core : {0u, 3u, 7u}) {
        AddressStream s(b, core, total, 42);
        const u64 slice = total / 8;
        for (int i = 0; i < 5000; ++i) {
            const u64 line = s.nextLine().value();
            EXPECT_GE(line, core * slice);
            EXPECT_LT(line, (core + 1) * slice);
        }
    }
}

TEST(AddressStream, Deterministic)
{
    const auto &b = findBenchmark("lbm");
    const u64 total = (16ull << 30) / 64;
    AddressStream a(b, 0, total, 7);
    AddressStream c(b, 0, total, 7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.nextLine(), c.nextLine());
}

TEST(AddressStream, RunLengthShapesSequentiality)
{
    const u64 total = (16ull << 30) / 64;
    auto sequential_fraction = [&](const char *name) {
        AddressStream s(findBenchmark(name), 0, total, 11);
        u64 prev = s.nextLine().value();
        int seq = 0;
        const int n = 20000;
        for (int i = 0; i < n; ++i) {
            const u64 cur = s.nextLine().value();
            seq += (cur == prev + 1);
            prev = cur;
        }
        return seq / static_cast<double>(n);
    };
    // lbm streams (runLength 32); mummer is near-random (1.2).
    EXPECT_GT(sequential_fraction("lbm"), 0.9);
    EXPECT_LT(sequential_fraction("mummer"), 0.4);
}

TEST(AddressStream, CoversFootprint)
{
    const auto &b = findBenchmark("tigr");
    const u64 total = (16ull << 30) / 64;
    AddressStream s(b, 0, total, 3);
    std::set<LineAddr> seen;
    for (int i = 0; i < 20000; ++i)
        seen.insert(s.nextLine());
    // Near-random stream over a 512MB footprint: mostly unique lines.
    EXPECT_GT(seen.size(), 15000u);
}

} // namespace
} // namespace citadel
