/**
 * @file
 * Tests for StackGeometry: baseline (Table II) derived quantities and
 * validation.
 */

#include <gtest/gtest.h>

#include "stack/geometry.h"

namespace citadel {
namespace {

TEST(Geometry, BaselineMatchesTableII)
{
    StackGeometry g;
    g.validate();
    EXPECT_EQ(g.stacks, 2u);
    EXPECT_EQ(g.channelsPerStack, 8u);
    EXPECT_EQ(g.banksPerChannel, 8u);
    EXPECT_EQ(g.rowsPerBank, 65536u);
    EXPECT_EQ(g.rowBytes, 2048u);
    EXPECT_EQ(g.dataTsvsPerChannel, 256u);
    EXPECT_EQ(g.addrTsvsPerChannel, 24u);

    // 8Gb per die, 1GB per channel, 8GB per stack, 16GB total.
    EXPECT_EQ(g.bytesPerBank(), 128ull << 20);
    EXPECT_EQ(g.bytesPerChannel(), 1ull << 30);
    EXPECT_EQ(g.bytesPerStack(), 8ull << 30);
    EXPECT_EQ(g.totalBytes(), 16ull << 30);
}

TEST(Geometry, DerivedLineQuantities)
{
    StackGeometry g;
    EXPECT_EQ(g.linesPerRow(), 32u);   // 2KB row / 64B line
    EXPECT_EQ(g.bitsPerLine(), 512u);  // 64B
    EXPECT_EQ(g.burstLength(), 2u);    // 512 bits over 256 DTSVs
    EXPECT_EQ(g.linesPerBank(), 65536ull * 32);
    EXPECT_EQ(g.totalLines(), (16ull << 30) / 64);
}

TEST(Geometry, BitWidths)
{
    StackGeometry g;
    EXPECT_EQ(g.rowBits(), 16u);
    EXPECT_EQ(g.bankBits(), 3u);
    EXPECT_EQ(g.colBits(), 5u);
    EXPECT_EQ(g.bitBits(), 9u);
}

TEST(Geometry, BankCounts)
{
    StackGeometry g;
    EXPECT_EQ(g.banksPerStack(), 64u);
    EXPECT_EQ(g.totalBanks(), 128u);
    EXPECT_EQ(g.totalChannels(), 16u);
}

TEST(Geometry, TinyIsValidAndSmall)
{
    StackGeometry g = StackGeometry::tiny();
    g.validate();
    EXPECT_EQ(g.stacks, 1u);
    EXPECT_LE(g.totalBytes(), 1ull << 20);
    EXPECT_EQ(g.linesPerRow(), 4u);
}

TEST(Geometry, ValidateRejectsNonPowerOfTwoRows)
{
    StackGeometry g;
    g.rowsPerBank = 60000;
    EXPECT_DEATH(g.validate(), "power of two");
}

TEST(Geometry, ValidateRejectsZeroDims)
{
    StackGeometry g;
    g.stacks = 0;
    EXPECT_DEATH(g.validate(), "non-zero");
}

TEST(Geometry, ValidateRejectsIndivisibleRow)
{
    StackGeometry g;
    g.rowBytes = 2000; // not a multiple of 64
    EXPECT_DEATH(g.validate(), "multiple");
}

TEST(Geometry, DescribeMentionsShape)
{
    StackGeometry g;
    const std::string d = g.describe();
    EXPECT_NE(d.find("2 stack"), std::string::npos);
    EXPECT_NE(d.find("16 GiB"), std::string::npos);
}

} // namespace
} // namespace citadel
