/**
 * @file
 * Tests for the bit-true RRT/BRT remap structures (Section VII-C).
 */

#include <gtest/gtest.h>

#include "citadel/remap_tables.h"

namespace citadel {
namespace {

TEST(RowRemapTable, InsertAndLookup)
{
    RowRemapTable rrt(64, 4);
    EXPECT_FALSE(rrt.lookup(UnitId{3}, RowId{100}).has_value());
    EXPECT_TRUE(rrt.insert(UnitId{3}, RowId{100}, RowId{7}));
    ASSERT_TRUE(rrt.lookup(UnitId{3}, RowId{100}).has_value());
    EXPECT_EQ(*rrt.lookup(UnitId{3}, RowId{100}), RowId{7});
    // Other banks and rows unaffected.
    EXPECT_FALSE(rrt.lookup(UnitId{3}, RowId{101}).has_value());
    EXPECT_FALSE(rrt.lookup(UnitId{4}, RowId{100}).has_value());
}

TEST(RowRemapTable, CapacityPerBank)
{
    RowRemapTable rrt(8, 4);
    for (u32 i = 0; i < 4; ++i)
        EXPECT_TRUE(rrt.insert(UnitId{0}, RowId{100 + i}, RowId{i}));
    EXPECT_EQ(rrt.used(UnitId{0}), 4u);
    // Fifth row in the same bank: full (escalate to bank sparing).
    EXPECT_FALSE(rrt.insert(UnitId{0}, RowId{200}, RowId{5}));
    // Another bank still has room.
    EXPECT_TRUE(rrt.insert(UnitId{1}, RowId{200}, RowId{5}));
}

TEST(RowRemapTable, ReinsertUpdatesInPlace)
{
    RowRemapTable rrt(8, 2);
    EXPECT_TRUE(rrt.insert(UnitId{0}, RowId{50}, RowId{1}));
    EXPECT_TRUE(rrt.insert(UnitId{0}, RowId{50}, RowId{2})); // refresh
    EXPECT_EQ(*rrt.lookup(UnitId{0}, RowId{50}), RowId{2});
    EXPECT_EQ(rrt.used(UnitId{0}), 1u);
}

TEST(RowRemapTable, StorageMatchesPaper)
{
    // 64 banks x 4 entries x 33 bits ~= 1KB (Section VII-C.2).
    RowRemapTable rrt(64, 4);
    EXPECT_EQ(rrt.storageBits(), 64u * 4 * 33);
    EXPECT_NEAR(static_cast<double>(rrt.storageBits()) / 8.0 / 1024.0,
                1.0, 0.05);
}

TEST(RowRemapTable, ClearResets)
{
    RowRemapTable rrt(8, 4);
    rrt.insert(UnitId{2}, RowId{9}, RowId{1});
    rrt.clear();
    EXPECT_FALSE(rrt.lookup(UnitId{2}, RowId{9}).has_value());
    EXPECT_EQ(rrt.used(UnitId{2}), 0u);
}

TEST(RowRemapTable, BoundsChecked)
{
    RowRemapTable rrt(8, 4);
    EXPECT_DEATH(rrt.insert(UnitId{8}, RowId{0}, RowId{0}),
                 "out of range");
    EXPECT_DEATH(rrt.lookup(UnitId{9}, RowId{0}), "out of range");
    EXPECT_DEATH(RowRemapTable(0, 4), "zero-sized");
}

TEST(BankRemapTable, InsertAndLookup)
{
    BankRemapTable brt(2);
    EXPECT_FALSE(brt.lookup(UnitId{13}).has_value());
    EXPECT_TRUE(brt.insert(UnitId{13}, 0));
    ASSERT_TRUE(brt.lookup(UnitId{13}).has_value());
    EXPECT_EQ(*brt.lookup(UnitId{13}), 0u);
    EXPECT_EQ(brt.used(), 1u);
}

TEST(BankRemapTable, TwoEntriesThenFull)
{
    BankRemapTable brt(2);
    EXPECT_TRUE(brt.insert(UnitId{13}, 0));
    EXPECT_TRUE(brt.insert(UnitId{27}, 1));
    EXPECT_FALSE(brt.insert(UnitId{40}, 0)); // Table III: 2 ~ 99.96%
    // Re-inserting a decommissioned bank is idempotent.
    EXPECT_TRUE(brt.insert(UnitId{13}, 0));
    EXPECT_EQ(brt.used(), 2u);
}

TEST(BankRemapTable, StorageIsTiny)
{
    BankRemapTable brt(2);
    EXPECT_EQ(brt.storageBits(), 2u * 8);
}

TEST(BankRemapTable, ClearResets)
{
    BankRemapTable brt(2);
    brt.insert(UnitId{5}, 1);
    brt.clear();
    EXPECT_FALSE(brt.lookup(UnitId{5}).has_value());
}

TEST(RemapAccessPath, BrtProbedBeforeRrt)
{
    // A memory access consults the BRT first (Section VII-C.3): once a
    // bank is decommissioned, its RRT entries are moot.
    BankRemapTable brt(2);
    RowRemapTable rrt(64, 4);
    rrt.insert(UnitId{13}, RowId{100}, RowId{3});
    brt.insert(UnitId{13}, 1);

    const UnitId bank{13};
    const RowId row{100};
    if (auto spare_bank = brt.lookup(bank)) {
        EXPECT_EQ(*spare_bank, 1u); // access goes to the spare bank
    } else if (auto spare_row = rrt.lookup(bank, row)) {
        FAIL() << "BRT hit must shadow the RRT";
    }
}

} // namespace
} // namespace citadel
