/**
 * @file
 * Tests for the bit-true RRT/BRT remap structures (Section VII-C).
 */

#include <gtest/gtest.h>

#include "citadel/remap_tables.h"

namespace citadel {
namespace {

TEST(RowRemapTable, InsertAndLookup)
{
    RowRemapTable rrt(64, 4);
    EXPECT_FALSE(rrt.lookup(3, 100).has_value());
    EXPECT_TRUE(rrt.insert(3, 100, 7));
    ASSERT_TRUE(rrt.lookup(3, 100).has_value());
    EXPECT_EQ(*rrt.lookup(3, 100), 7u);
    // Other banks and rows unaffected.
    EXPECT_FALSE(rrt.lookup(3, 101).has_value());
    EXPECT_FALSE(rrt.lookup(4, 100).has_value());
}

TEST(RowRemapTable, CapacityPerBank)
{
    RowRemapTable rrt(8, 4);
    for (u32 i = 0; i < 4; ++i)
        EXPECT_TRUE(rrt.insert(0, 100 + i, i));
    EXPECT_EQ(rrt.used(0), 4u);
    // Fifth row in the same bank: full (escalate to bank sparing).
    EXPECT_FALSE(rrt.insert(0, 200, 5));
    // Another bank still has room.
    EXPECT_TRUE(rrt.insert(1, 200, 5));
}

TEST(RowRemapTable, ReinsertUpdatesInPlace)
{
    RowRemapTable rrt(8, 2);
    EXPECT_TRUE(rrt.insert(0, 50, 1));
    EXPECT_TRUE(rrt.insert(0, 50, 2)); // same source row: refresh
    EXPECT_EQ(*rrt.lookup(0, 50), 2u);
    EXPECT_EQ(rrt.used(0), 1u);
}

TEST(RowRemapTable, StorageMatchesPaper)
{
    // 64 banks x 4 entries x 33 bits ~= 1KB (Section VII-C.2).
    RowRemapTable rrt(64, 4);
    EXPECT_EQ(rrt.storageBits(), 64u * 4 * 33);
    EXPECT_NEAR(static_cast<double>(rrt.storageBits()) / 8.0 / 1024.0,
                1.0, 0.05);
}

TEST(RowRemapTable, ClearResets)
{
    RowRemapTable rrt(8, 4);
    rrt.insert(2, 9, 1);
    rrt.clear();
    EXPECT_FALSE(rrt.lookup(2, 9).has_value());
    EXPECT_EQ(rrt.used(2), 0u);
}

TEST(RowRemapTable, BoundsChecked)
{
    RowRemapTable rrt(8, 4);
    EXPECT_DEATH(rrt.insert(8, 0, 0), "out of range");
    EXPECT_DEATH(rrt.lookup(9, 0), "out of range");
    EXPECT_DEATH(RowRemapTable(0, 4), "zero-sized");
}

TEST(BankRemapTable, InsertAndLookup)
{
    BankRemapTable brt(2);
    EXPECT_FALSE(brt.lookup(13).has_value());
    EXPECT_TRUE(brt.insert(13, 0));
    ASSERT_TRUE(brt.lookup(13).has_value());
    EXPECT_EQ(*brt.lookup(13), 0u);
    EXPECT_EQ(brt.used(), 1u);
}

TEST(BankRemapTable, TwoEntriesThenFull)
{
    BankRemapTable brt(2);
    EXPECT_TRUE(brt.insert(13, 0));
    EXPECT_TRUE(brt.insert(27, 1));
    EXPECT_FALSE(brt.insert(40, 0)); // Table III: 2 covers ~99.96%
    // Re-inserting a decommissioned bank is idempotent.
    EXPECT_TRUE(brt.insert(13, 0));
    EXPECT_EQ(brt.used(), 2u);
}

TEST(BankRemapTable, StorageIsTiny)
{
    BankRemapTable brt(2);
    EXPECT_EQ(brt.storageBits(), 2u * 8);
}

TEST(BankRemapTable, ClearResets)
{
    BankRemapTable brt(2);
    brt.insert(5, 1);
    brt.clear();
    EXPECT_FALSE(brt.lookup(5).has_value());
}

TEST(RemapAccessPath, BrtProbedBeforeRrt)
{
    // A memory access consults the BRT first (Section VII-C.3): once a
    // bank is decommissioned, its RRT entries are moot.
    BankRemapTable brt(2);
    RowRemapTable rrt(64, 4);
    rrt.insert(13, 100, 3);
    brt.insert(13, 1);

    const u32 bank = 13;
    const u32 row = 100;
    if (auto spare_bank = brt.lookup(bank)) {
        EXPECT_EQ(*spare_bank, 1u); // access goes to the spare bank
    } else if (auto spare_row = rrt.lookup(bank, row)) {
        FAIL() << "BRT hit must shadow the RRT";
    }
}

} // namespace
} // namespace citadel
