/**
 * @file
 * Tests for the Reed-Solomon codec, including the ChipKill-like
 * configuration the paper's baselines assume: parameterized sweeps over
 * code shapes, random error/erasure patterns, and capability limits.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "ecc/reed_solomon.h"

namespace citadel {
namespace {

std::vector<u8>
randomData(Rng &rng, u32 k)
{
    std::vector<u8> d(k);
    for (auto &b : d)
        b = static_cast<u8>(rng.next());
    return d;
}

TEST(ReedSolomon, EncodeIsSystematic)
{
    RsCode rs(18, 16);
    Rng rng(1);
    const auto data = randomData(rng, 16);
    const auto cw = rs.encode(data);
    ASSERT_EQ(cw.size(), 18u);
    EXPECT_TRUE(std::equal(data.begin(), data.end(), cw.begin()));
    EXPECT_TRUE(rs.isCodeword(cw));
}

TEST(ReedSolomon, CleanDecodeReturnsData)
{
    RsCode rs(72, 64);
    Rng rng(2);
    const auto data = randomData(rng, 64);
    const auto decoded = rs.decode(rs.encode(data));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, data);
}

TEST(ReedSolomon, InvalidParamsDie)
{
    EXPECT_DEATH(RsCode(300, 16), "invalid");
    EXPECT_DEATH(RsCode(16, 16), "invalid");
    EXPECT_DEATH(RsCode(16, 0), "invalid");
}

struct RsShape
{
    u32 n;
    u32 k;
};

class RsSweep : public ::testing::TestWithParam<RsShape>
{
};

TEST_P(RsSweep, CorrectsUpToTErrors)
{
    const auto [n, k] = GetParam();
    RsCode rs(n, k);
    Rng rng(n * 1000 + k);
    for (u32 errs = 0; errs <= rs.t(); ++errs) {
        for (int iter = 0; iter < 20; ++iter) {
            const auto data = randomData(rng, k);
            auto cw = rs.encode(data);
            std::set<u32> pos;
            while (pos.size() < errs)
                pos.insert(static_cast<u32>(rng.below(n)));
            for (u32 p : pos)
                cw[p] ^= static_cast<u8>(1 + rng.below(255));
            const auto decoded = rs.decode(cw);
            ASSERT_TRUE(decoded.has_value())
                << "n=" << n << " k=" << k << " errs=" << errs;
            EXPECT_EQ(*decoded, data);
        }
    }
}

TEST_P(RsSweep, DetectsBeyondCapability)
{
    const auto [n, k] = GetParam();
    RsCode rs(n, k);
    Rng rng(n * 2000 + k);
    // t+1 errors must never be silently miscorrected to wrong data;
    // decoding may fail (preferred) or -- astronomically rarely --
    // land on another codeword. With random patterns we accept only
    // explicit failure here.
    int wrong = 0;
    for (int iter = 0; iter < 50; ++iter) {
        const auto data = randomData(rng, k);
        auto cw = rs.encode(data);
        std::set<u32> pos;
        while (pos.size() < rs.t() + 1)
            pos.insert(static_cast<u32>(rng.below(n)));
        for (u32 p : pos)
            cw[p] ^= static_cast<u8>(1 + rng.below(255));
        const auto decoded = rs.decode(cw);
        if (decoded && *decoded != data)
            ++wrong;
    }
    // Miscorrection (decoding "success" with wrong data) is possible in
    // principle for (t+1)-error patterns, but must be rare. Minimum
    // distance shrinks with n-k, so t=1 codes alias somewhat more often.
    EXPECT_LE(wrong, rs.t() == 1 ? 8 : 2);
}

INSTANTIATE_TEST_SUITE_P(Shapes, RsSweep,
                         ::testing::Values(RsShape{18, 16},
                                           RsShape{72, 64},
                                           RsShape{36, 32},
                                           RsShape{255, 223},
                                           RsShape{10, 4}));

TEST(ReedSolomon, ErasureDecodingUsesFullDistance)
{
    // n-k erasures at known positions are correctable (2e + f <= n-k).
    RsCode rs(18, 16);
    Rng rng(7);
    const auto data = randomData(rng, 16);
    auto cw = rs.encode(data);
    cw[3] ^= 0x55;
    cw[9] ^= 0xAA;
    const auto decoded = rs.decode(cw, {3, 9});
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, data);
}

TEST(ReedSolomon, ChipKillConfigurationCorrectsOneSymbol)
{
    // The paper's abstraction: one 8-bit symbol position per bank; a
    // bank failure corrupts exactly one symbol of each codeword, which
    // RS with 2 check symbols corrects.
    RsCode rs(10, 8); // 8 data banks + 2 check symbols
    Rng rng(8);
    for (u32 dead_bank = 0; dead_bank < 8; ++dead_bank) {
        const auto data = randomData(rng, 8);
        auto cw = rs.encode(data);
        cw[dead_bank] = static_cast<u8>(rng.next()); // arbitrary garbage
        const auto decoded = rs.decode(cw);
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(*decoded, data);
    }
}

TEST(ReedSolomon, ChipKillTwoDeadBanksFail)
{
    RsCode rs(10, 8);
    Rng rng(9);
    int failures = 0;
    for (int iter = 0; iter < 40; ++iter) {
        const auto data = randomData(rng, 8);
        auto cw = rs.encode(data);
        cw[1] ^= static_cast<u8>(1 + rng.below(255));
        cw[5] ^= static_cast<u8>(1 + rng.below(255));
        const auto decoded = rs.decode(cw);
        if (!decoded || *decoded != data)
            ++failures;
    }
    // Two corrupted symbol positions exceed single-symbol correction.
    EXPECT_GE(failures, 38);
}

TEST(ReedSolomon, TooManyErasuresRejected)
{
    RsCode rs(10, 8);
    Rng rng(10);
    const auto data = randomData(rng, 8);
    auto cw = rs.encode(data);
    EXPECT_FALSE(rs.decode(cw, {0, 1, 2}).has_value());
}

TEST(ReedSolomon, WrongLengthRejected)
{
    RsCode rs(10, 8);
    std::vector<u8> short_cw(9, 0);
    EXPECT_FALSE(rs.decode(short_cw).has_value());
}

} // namespace
} // namespace citadel
