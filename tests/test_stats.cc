/**
 * @file
 * Tests for the statistics toolkit (streaming moments, Wilson CI,
 * geometric mean).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"

namespace citadel {
namespace {

TEST(StreamingStats, EmptyIsZero)
{
    StreamingStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, SingleSample)
{
    StreamingStats s;
    s.add(42.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 42.0);
    EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(StreamingStats, KnownMoments)
{
    StreamingStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance of this classic set is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, NegativeValues)
{
    StreamingStats s;
    s.add(-3.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), -3.0);
    EXPECT_NEAR(s.variance(), 18.0, 1e-12);
}

TEST(Wilson, ZeroTrials)
{
    const Proportion p = wilson(0, 0);
    EXPECT_EQ(p.trials, 0u);
    EXPECT_DOUBLE_EQ(p.estimate, 0.0);
}

TEST(Wilson, ZeroSuccessesHasPositiveUpperBound)
{
    const Proportion p = wilson(0, 1000);
    EXPECT_DOUBLE_EQ(p.estimate, 0.0);
    EXPECT_NEAR(p.lo95, 0.0, 1e-12);
    EXPECT_GT(p.hi95, 0.0);
    EXPECT_LT(p.hi95, 0.01); // rule of three: ~3/n
}

TEST(Wilson, AllSuccesses)
{
    const Proportion p = wilson(1000, 1000);
    EXPECT_DOUBLE_EQ(p.estimate, 1.0);
    EXPECT_LT(p.lo95, 1.0);
    EXPECT_DOUBLE_EQ(p.hi95, 1.0);
}

TEST(Wilson, CoversTrueProportion)
{
    const Proportion p = wilson(500, 1000);
    EXPECT_NEAR(p.estimate, 0.5, 1e-12);
    EXPECT_LT(p.lo95, 0.5);
    EXPECT_GT(p.hi95, 0.5);
    // Interval width ~ 2 * 1.96 * sqrt(0.25/1000) ~ 0.062.
    EXPECT_NEAR(p.hi95 - p.lo95, 0.062, 0.005);
}

TEST(Wilson, IntervalShrinksWithTrials)
{
    const Proportion small = wilson(5, 100);
    const Proportion big = wilson(500, 10000);
    EXPECT_LT(big.hi95 - big.lo95, small.hi95 - small.lo95);
}

TEST(Geomean, Basics)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Geomean, InvariantUnderPermutation)
{
    EXPECT_NEAR(geomean({1.5, 2.5, 9.0}), geomean({9.0, 1.5, 2.5}), 1e-12);
}

TEST(Mean, Basics)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

} // namespace
} // namespace citadel
