/**
 * @file
 * Tests for the analytic baseline evaluators: the ChipKill-like symbol
 * code at all three stripings, BCH 6EC7ED and RAID-5. Each case encodes
 * a claim from Sections II-E, V-B or VIII-F of the paper.
 */

#include <gtest/gtest.h>

#include "ecc/baseline_schemes.h"
#include "fault_builders.h"

namespace citadel {
namespace {

using namespace testing_helpers;

class BaselineTest : public ::testing::Test
{
  protected:
    SystemConfig cfg_;

    bool
    unc(RasScheme &s, std::vector<Fault> faults)
    {
        s.reset(cfg_);
        return s.uncorrectable(faults);
    }

    u32 ecc() const { return cfg_.eccChannel(); }
};

// ---------------------------------------------------------------- SameBank

TEST_F(BaselineTest, SameBankToleratesSingleBitFault)
{
    SymbolStripedScheme s(StripingMode::SameBank);
    EXPECT_FALSE(unc(s, {bitFault(0, 1, 2, 3, 4, 5)}));
}

TEST_F(BaselineTest, SameBankFailsOnWordFault)
{
    // A 64-bit word spans 8 symbols of the line's codeword.
    SymbolStripedScheme s(StripingMode::SameBank);
    EXPECT_TRUE(unc(s, {wordFault(0, 1, 2, 3, 4, 2)}));
}

TEST_F(BaselineTest, SameBankFailsOnRowColumnBankFaults)
{
    SymbolStripedScheme s(StripingMode::SameBank);
    EXPECT_TRUE(unc(s, {rowFault(0, 1, 2, 3)}));
    EXPECT_TRUE(unc(s, {columnFault(0, 1, 2, 7)}));
    EXPECT_TRUE(unc(s, {bankFault(0, 1, 2)}));
    EXPECT_TRUE(unc(s, {channelFault(0, 1)}));
}

TEST_F(BaselineTest, SameBankFailsOnDataTsvFault)
{
    // DTSV d corrupts bits d and d+256: two different symbols.
    SymbolStripedScheme s(StripingMode::SameBank);
    EXPECT_TRUE(unc(s, {dataTsvFault(0, 1, 5)}));
}

TEST_F(BaselineTest, SameBankTwoBitFaultsSameLineFail)
{
    SymbolStripedScheme s(StripingMode::SameBank);
    EXPECT_TRUE(
        unc(s, {bitFault(0, 1, 2, 3, 4, 5), bitFault(0, 1, 2, 3, 4, 100)}));
}

TEST_F(BaselineTest, SameBankTwoBitFaultsDifferentLinesOk)
{
    SymbolStripedScheme s(StripingMode::SameBank);
    EXPECT_FALSE(
        unc(s, {bitFault(0, 1, 2, 3, 4, 5), bitFault(0, 1, 2, 3, 5, 5)}));
    EXPECT_FALSE(
        unc(s, {bitFault(0, 1, 2, 3, 4, 5), bitFault(0, 2, 2, 3, 4, 5)}));
}

TEST_F(BaselineTest, SameBankEccDieFaultAloneOk)
{
    SymbolStripedScheme s(StripingMode::SameBank);
    EXPECT_FALSE(unc(s, {bankFault(0, ecc(), 3)}));
}

TEST_F(BaselineTest, SameBankDataPlusEccOverlapFails)
{
    SymbolStripedScheme s(StripingMode::SameBank);
    // Bit fault in bank 3 and loss of the metadata bank mirroring it.
    EXPECT_TRUE(
        unc(s, {bitFault(0, 1, 3, 10, 2, 0), bankFault(0, ecc(), 3)}));
    // Different bank index: checks for the faulty line are intact.
    EXPECT_FALSE(
        unc(s, {bitFault(0, 1, 3, 10, 2, 0), bankFault(0, ecc(), 4)}));
}

// -------------------------------------------------------------- AcrossBanks

TEST_F(BaselineTest, AcrossBanksToleratesAnySingleBankFault)
{
    SymbolStripedScheme s(StripingMode::AcrossBanks);
    EXPECT_FALSE(unc(s, {bankFault(0, 1, 2)}));
    EXPECT_FALSE(unc(s, {rowFault(0, 1, 2, 3)}));
    EXPECT_FALSE(unc(s, {columnFault(0, 1, 2, 7)}));
    EXPECT_FALSE(unc(s, {wordFault(0, 1, 2, 3, 4, 2)}));
}

TEST_F(BaselineTest, AcrossBanksFailsOnMultiBankFaults)
{
    SymbolStripedScheme s(StripingMode::AcrossBanks);
    EXPECT_TRUE(unc(s, {channelFault(0, 1)}));
    EXPECT_TRUE(unc(s, {dataTsvFault(0, 1, 5)}));
    EXPECT_TRUE(unc(s, {addrTsvRowFault(0, 1, 4, 0)}));
}

TEST_F(BaselineTest, AcrossBanksTwoBankFaultsSameDieFail)
{
    SymbolStripedScheme s(StripingMode::AcrossBanks);
    EXPECT_TRUE(unc(s, {bankFault(0, 1, 2), bankFault(0, 1, 5)}));
}

TEST_F(BaselineTest, AcrossBanksTwoBankFaultsDifferentDiesOk)
{
    SymbolStripedScheme s(StripingMode::AcrossBanks);
    EXPECT_FALSE(unc(s, {bankFault(0, 1, 2), bankFault(0, 2, 2)}));
    EXPECT_FALSE(unc(s, {bankFault(0, 1, 2), bankFault(1, 1, 2)}));
}

TEST_F(BaselineTest, AcrossBanksRowOverlapMatters)
{
    SymbolStripedScheme s(StripingMode::AcrossBanks);
    // Same die, different banks, same row: two symbols of one codeword.
    EXPECT_TRUE(unc(s, {rowFault(0, 1, 2, 50), rowFault(0, 1, 3, 50)}));
    // Same die, different banks, different rows: disjoint codewords.
    EXPECT_FALSE(unc(s, {rowFault(0, 1, 2, 50), rowFault(0, 1, 3, 51)}));
}

// ----------------------------------------------------------- AcrossChannels

TEST_F(BaselineTest, AcrossChannelsToleratesWholeChannelFault)
{
    SymbolStripedScheme s(StripingMode::AcrossChannels);
    EXPECT_FALSE(unc(s, {channelFault(0, 1)}));
    EXPECT_FALSE(unc(s, {dataTsvFault(0, 1, 5)}));
    EXPECT_FALSE(unc(s, {addrTsvRowFault(0, 1, 4, 0)}));
    EXPECT_FALSE(unc(s, {bankFault(0, 1, 2)}));
}

TEST_F(BaselineTest, AcrossChannelsTwoChannelsOverlappingFail)
{
    SymbolStripedScheme s(StripingMode::AcrossChannels);
    EXPECT_TRUE(unc(s, {channelFault(0, 1), channelFault(0, 2)}));
    EXPECT_TRUE(unc(s, {bankFault(0, 1, 2), bankFault(0, 2, 2)}));
    // Bank fault and a bit fault inside its codeword shadow.
    EXPECT_TRUE(unc(s, {bankFault(0, 1, 2), bitFault(0, 3, 2, 9, 9, 9)}));
}

TEST_F(BaselineTest, AcrossChannelsDisjointExtentsOk)
{
    SymbolStripedScheme s(StripingMode::AcrossChannels);
    // Different bank indices -> different codewords.
    EXPECT_FALSE(unc(s, {bankFault(0, 1, 2), bankFault(0, 2, 3)}));
    // Different stacks never share a codeword.
    EXPECT_FALSE(unc(s, {channelFault(0, 1), channelFault(1, 1)}));
}

TEST_F(BaselineTest, AcrossChannelsSameChannelAccumulationOk)
{
    SymbolStripedScheme s(StripingMode::AcrossChannels);
    // Everything in one channel stays one symbol position.
    EXPECT_FALSE(unc(s, {channelFault(0, 1), bankFault(0, 1, 2),
                         rowFault(0, 1, 3, 7)}));
}

// ------------------------------------------------------------------- BCH

TEST_F(BaselineTest, BchToleratesUpToSixBits)
{
    Bch6EC7EDScheme s;
    EXPECT_FALSE(unc(s, {bitFault(0, 1, 2, 3, 4, 5)}));
    // Data-TSV fault is only 2 bits per line: BCH-6 survives it.
    EXPECT_FALSE(unc(s, {dataTsvFault(0, 1, 5)}));
    // Three faults, same line, 1+1+2 bits.
    EXPECT_FALSE(unc(s, {bitFault(0, 1, 2, 3, 4, 5),
                         bitFault(0, 1, 2, 3, 4, 99)}));
}

TEST_F(BaselineTest, BchFailsOnLargeGranularity)
{
    Bch6EC7EDScheme s;
    EXPECT_TRUE(unc(s, {wordFault(0, 1, 2, 3, 4, 1)})); // 64 bits
    EXPECT_TRUE(unc(s, {rowFault(0, 1, 2, 3)}));
    EXPECT_TRUE(unc(s, {columnFault(0, 1, 2, 3)}));
    EXPECT_TRUE(unc(s, {bankFault(0, 1, 2)}));
}

TEST_F(BaselineTest, BchPairBudget)
{
    Bch6EC7EDScheme s;
    // Two DTSV faults on the same lines: 2 + 2 = 4 bits <= 6.
    EXPECT_FALSE(unc(s, {dataTsvFault(0, 1, 5), dataTsvFault(0, 1, 9)}));
    // Four DTSV faults: pairwise sums stay at 4 <= 6 (pairwise model).
    EXPECT_FALSE(unc(s, {dataTsvFault(0, 1, 5), dataTsvFault(0, 1, 9),
                         dataTsvFault(0, 1, 13)}));
}

TEST_F(BaselineTest, BchEccDieLoss)
{
    Bch6EC7EDScheme s;
    EXPECT_FALSE(unc(s, {bankFault(0, ecc(), 2)}));
    EXPECT_TRUE(
        unc(s, {bitFault(0, 1, 2, 3, 4, 5), bankFault(0, ecc(), 2)}));
}

// ------------------------------------------------------------------ RAID-5

TEST_F(BaselineTest, Raid5ToleratesAnySingleChannelDamage)
{
    Raid5Scheme s;
    EXPECT_FALSE(unc(s, {channelFault(0, 1)}));
    EXPECT_FALSE(unc(s, {bankFault(0, 1, 2)}));
    EXPECT_FALSE(unc(s, {rowFault(0, 1, 2, 3)}));
}

TEST_F(BaselineTest, Raid5FailsOnCrossChannelOverlap)
{
    Raid5Scheme s;
    EXPECT_TRUE(unc(s, {bankFault(0, 1, 2), bankFault(0, 2, 2)}));
    EXPECT_TRUE(unc(s, {channelFault(0, 1), bitFault(0, 2, 0, 0, 0, 0)}));
    EXPECT_FALSE(unc(s, {bankFault(0, 1, 2), bankFault(0, 2, 3)}));
    EXPECT_FALSE(unc(s, {bankFault(0, 1, 2), bankFault(1, 2, 2)}));
}

// ------------------------------------------------------------ misc/common

TEST_F(BaselineTest, NamesIdentifyScheme)
{
    EXPECT_EQ(SymbolStripedScheme(StripingMode::SameBank).name(),
              "SSC-Same-Bank");
    EXPECT_EQ(SymbolStripedScheme(StripingMode::AcrossChannels).name(),
              "SSC-Across-Channels");
    EXPECT_EQ(Bch6EC7EDScheme().name(), "BCH-6EC7ED");
    EXPECT_EQ(Raid5Scheme().name(), "RAID-5");
}

TEST_F(BaselineTest, EmptyFaultSetCorrectableEverywhere)
{
    SymbolStripedScheme sb(StripingMode::SameBank);
    SymbolStripedScheme ab(StripingMode::AcrossBanks);
    SymbolStripedScheme ac(StripingMode::AcrossChannels);
    Bch6EC7EDScheme bch;
    Raid5Scheme raid;
    EXPECT_FALSE(unc(sb, {}));
    EXPECT_FALSE(unc(ab, {}));
    EXPECT_FALSE(unc(ac, {}));
    EXPECT_FALSE(unc(bch, {}));
    EXPECT_FALSE(unc(raid, {}));
}

TEST(SymbolScheme, RejectsNonPowerOfTwoSymbol)
{
    EXPECT_DEATH(SymbolStripedScheme s(StripingMode::SameBank, 6),
                 "power of two");
}

} // namespace
} // namespace citadel
