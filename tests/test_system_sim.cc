/**
 * @file
 * Integration tests for the timing simulator: the relative behaviours
 * the paper's Figs 5, 13, 15 and 16 rest on must emerge from the model.
 */

#include <gtest/gtest.h>

#include "sim/system_sim.h"

namespace citadel {
namespace {

class SystemSimTest : public ::testing::Test
{
  protected:
    SimConfig cfg_;

    void
    SetUp() override
    {
        cfg_.insnsPerCore = 150'000; // small but stable for tests
        cfg_.seed = 5;
    }

    SimResult
    run(const char *bench, StripingMode mode, RasTraffic ras)
    {
        SimConfig c = cfg_;
        c.striping = mode;
        c.ras = ras;
        SystemSim sim(c, findBenchmark(bench));
        return sim.run();
    }
};

TEST_F(SystemSimTest, RetiresAllInstructions)
{
    const SimResult r =
        run("milc", StripingMode::SameBank, RasTraffic::None);
    EXPECT_EQ(r.insnsRetired, 8u * cfg_.insnsPerCore);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.mem.readBursts, 0u);
}

TEST_F(SystemSimTest, DeterministicForSeed)
{
    const SimResult a =
        run("mcf", StripingMode::SameBank, RasTraffic::None);
    const SimResult b =
        run("mcf", StripingMode::SameBank, RasTraffic::None);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.mem.activates, b.mem.activates);
}

TEST_F(SystemSimTest, StripingSlowsExecution)
{
    // Fig 5: Across-Banks ~10% slower, Across-Channels ~25% slower.
    const SimResult sb =
        run("milc", StripingMode::SameBank, RasTraffic::None);
    const SimResult ab =
        run("milc", StripingMode::AcrossBanks, RasTraffic::None);
    const SimResult ac =
        run("milc", StripingMode::AcrossChannels, RasTraffic::None);
    EXPECT_GT(ab.cycles, sb.cycles);
    EXPECT_GT(ac.cycles, sb.cycles);
}

TEST_F(SystemSimTest, StripingMultipliesActivations)
{
    const SimResult sb =
        run("mcf", StripingMode::SameBank, RasTraffic::None);
    const SimResult ab =
        run("mcf", StripingMode::AcrossBanks, RasTraffic::None);
    // mcf is near-random: striping activates ~8 banks per access.
    EXPECT_GT(static_cast<double>(ab.mem.activates),
              5.0 * static_cast<double>(sb.mem.activates));
}

TEST_F(SystemSimTest, StripingRaisesActivePower)
{
    const SimResult sb =
        run("milc", StripingMode::SameBank, RasTraffic::None);
    const SimResult ab =
        run("milc", StripingMode::AcrossBanks, RasTraffic::None);
    EXPECT_GT(ab.power.totalW(), 1.5 * sb.power.totalW());
}

TEST_F(SystemSimTest, ThreeDPCachedIsCheaperThanUncached)
{
    // Fig 15: parity caching keeps 3DP within ~1%; uncached ~4.5%.
    const SimResult base =
        run("lbm", StripingMode::SameBank, RasTraffic::None);
    const SimResult cached =
        run("lbm", StripingMode::SameBank, RasTraffic::ThreeDPCached);
    const SimResult uncached =
        run("lbm", StripingMode::SameBank, RasTraffic::ThreeDPUncached);
    EXPECT_GE(cached.cycles, base.cycles);
    // At bench-scale instruction budgets the cycle gap is ~1-5%; allow
    // a small noise band but require uncached to cost more DRAM ops.
    EXPECT_GE(static_cast<double>(uncached.cycles),
              0.95 * static_cast<double>(cached.cycles));
    EXPECT_GT(uncached.mem.readBursts + uncached.mem.writeBursts,
              cached.mem.readBursts + cached.mem.writeBursts);
}

TEST_F(SystemSimTest, ParityCachingHitRateHighForStreams)
{
    // Fig 13: streaming SPEC-FP workloads hit ~85%+; BioBench is low.
    const SimResult stream =
        run("lbm", StripingMode::SameBank, RasTraffic::ThreeDPCached);
    EXPECT_GT(stream.llc.parityProbes, 100u);
    EXPECT_GT(stream.parityHitRate(), 0.6);

    const SimResult random =
        run("mummer", StripingMode::SameBank, RasTraffic::ThreeDPCached);
    EXPECT_LT(random.parityHitRate(), stream.parityHitRate());
}

TEST_F(SystemSimTest, NoParityTrafficWithoutThreeDP)
{
    const SimResult r =
        run("lbm", StripingMode::SameBank, RasTraffic::None);
    EXPECT_EQ(r.llc.parityProbes, 0u);
    EXPECT_EQ(r.llc.parityFills, 0u);
}

TEST_F(SystemSimTest, RbwDoublesReadTrafficPerWriteback)
{
    const SimResult base =
        run("lbm", StripingMode::SameBank, RasTraffic::None);
    const SimResult uncached =
        run("lbm", StripingMode::SameBank, RasTraffic::ThreeDPUncached);
    // RBW + parity read add reads beyond the demand stream.
    EXPECT_GT(uncached.mem.readBursts, base.mem.readBursts);
    EXPECT_GT(uncached.mem.writeBursts, base.mem.writeBursts);
}

TEST_F(SystemSimTest, LowMpkiBenchmarkBarelyAffectedByStriping)
{
    const SimResult sb =
        run("povray", StripingMode::SameBank, RasTraffic::None);
    const SimResult ac =
        run("povray", StripingMode::AcrossChannels, RasTraffic::None);
    const double slowdown = static_cast<double>(ac.cycles) /
                            static_cast<double>(sb.cycles);
    EXPECT_LT(slowdown, 1.1); // compute-bound: memory barely matters
}

TEST_F(SystemSimTest, PowerBreakdownConsistent)
{
    const SimResult r =
        run("milc", StripingMode::SameBank, RasTraffic::None);
    EXPECT_GT(r.power.activateW, 0.0);
    EXPECT_GT(r.power.readWriteW, 0.0);
    EXPECT_GT(r.power.refreshW, 0.0);
    EXPECT_NEAR(r.power.totalW(),
                r.power.activateW + r.power.readWriteW + r.power.refreshW,
                1e-12);
}

TEST(PowerModel, ZeroCyclesSafe)
{
    MemCounters c;
    const PowerResult r = computePower(c, 0);
    EXPECT_DOUBLE_EQ(r.totalW(), 0.0);
}

TEST(PowerModel, ScalesWithActivity)
{
    MemCounters a;
    a.activates = 1000;
    a.bytesRead = 64000;
    MemCounters b = a;
    b.activates = 8000;
    const PowerResult pa = computePower(a, 10000);
    const PowerResult pb = computePower(b, 10000);
    EXPECT_NEAR(pb.activateW / pa.activateW, 8.0, 1e-9);
    EXPECT_DOUBLE_EQ(pb.readWriteW, pa.readWriteW);
}

} // namespace
} // namespace citadel
