/**
 * @file
 * End-to-end integration tests: the full Citadel stack against the
 * paper's baselines on the real configuration, plus the storage
 * overhead accounting of Section VII-E.
 */

#include <gtest/gtest.h>

#include "citadel/citadel.h"
#include "common/env.h"

namespace citadel {
namespace {

class IntegrationTest : public ::testing::Test
{
  protected:
    SystemConfig cfg_;
    u64 trials_ = 3000;
};

TEST_F(IntegrationTest, CitadelSurvivesHighTsvFaultRates)
{
    // Fig 9: with TSV-Swap, reliability at 1430 TSV FIT matches the
    // no-TSV-fault level.
    cfg_.tsvDeviceFit = 1430.0;
    MonteCarlo mc(cfg_);
    auto with_swap = makeCitadel();
    const double p_swap =
        mc.run(*with_swap, trials_, 21).probFail().estimate;

    SystemConfig no_tsv = cfg_;
    no_tsv.tsvDeviceFit = 0.0;
    MonteCarlo mc_clean(no_tsv);
    const double p_clean =
        mc_clean.run(*with_swap, trials_, 21).probFail().estimate;

    CitadelOptions no_swap_opts;
    no_swap_opts.enableTsvSwap = false;
    auto no_swap = makeCitadel(no_swap_opts);
    const double p_noswap =
        mc.run(*no_swap, trials_, 21).probFail().estimate;

    EXPECT_LE(p_swap, p_clean + 0.01);
    EXPECT_GT(p_noswap, p_swap);
}

TEST_F(IntegrationTest, ReliabilityOrderingAcrossSchemes)
{
    // The qualitative ordering behind Figs 14, 18, 19:
    // Citadel < 3DP < striped SSC < Same-Bank SSC, and
    // 6EC7ED is the weakest baseline.
    cfg_.tsvDeviceFit = 0.0;
    MonteCarlo mc(cfg_);

    auto full = makeCitadel();
    auto parity3 = makeParityOnly(3);
    auto ssc_ac = makeSymbolBaseline(StripingMode::AcrossChannels);
    auto ssc_sb = makeSymbolBaseline(StripingMode::SameBank);
    auto bch = makeBchBaseline();

    const double p_full =
        mc.run(*full, trials_, 8).probFail().estimate;
    const double p_3dp =
        mc.run(*parity3, trials_, 8).probFail().estimate;
    const double p_ac =
        mc.run(*ssc_ac, trials_, 8).probFail().estimate;
    const double p_sb =
        mc.run(*ssc_sb, trials_, 8).probFail().estimate;
    const double p_bch = mc.run(*bch, trials_, 8).probFail().estimate;

    EXPECT_LE(p_full, p_3dp);
    EXPECT_LE(p_3dp, p_ac + 0.01);
    EXPECT_LT(p_ac, p_sb);
    EXPECT_GE(p_bch, p_sb * 0.5); // both die on large faults
    // Citadel removes essentially all failures at this trial count.
    EXPECT_LT(p_full, 0.01);
}

TEST_F(IntegrationTest, ParityDimensionAblation)
{
    // Fig 14: resilience improves monotonically with dimensions.
    cfg_.tsvDeviceFit = 0.0;
    MonteCarlo mc(cfg_);
    double prev = 1.0;
    for (u32 dims : {1u, 2u, 3u}) {
        auto s = makeParityOnly(dims);
        const double p = mc.run(*s, trials_, 9).probFail().estimate;
        EXPECT_LE(p, prev + 0.005) << "dims=" << dims;
        prev = p;
    }
}

TEST_F(IntegrationTest, StorageOverheadMatchesSectionVIIE)
{
    const StorageOverhead o = computeOverhead(cfg_);
    EXPECT_NEAR(o.eccDieFraction, 0.125, 1e-12);   // 1 die per 8
    EXPECT_NEAR(o.parityBankFraction, 1.0 / 64.0, 1e-12);
    EXPECT_NEAR(o.dramFraction(), 0.1406, 0.001);  // ~14%
    EXPECT_EQ(o.sramParityBytes, 17u * 2048u);     // 34KB (9+8 rows)
    EXPECT_NEAR(static_cast<double>(o.sramRemapBytes), 1056.0, 16.0);
}

TEST_F(IntegrationTest, OverheadRespondsToOptions)
{
    CitadelOptions opts;
    opts.parityDims = 1;
    opts.enableDds = false;
    const StorageOverhead o = computeOverhead(cfg_, opts);
    EXPECT_EQ(o.sramParityBytes, 0u);
    EXPECT_EQ(o.sramRemapBytes, 0u);
    EXPECT_NEAR(o.dramFraction(), 0.1406, 0.001);
}

TEST_F(IntegrationTest, SchemeNamesComposeCorrectly)
{
    EXPECT_EQ(makeCitadel()->name(), "TSV-Swap+DDS+3DP");
    CitadelOptions opts;
    opts.enableTsvSwap = false;
    EXPECT_EQ(makeCitadel(opts)->name(), "DDS+3DP");
    opts.enableDds = false;
    opts.parityDims = 2;
    EXPECT_EQ(makeCitadel(opts)->name(), "2DP");
}

TEST_F(IntegrationTest, EnvHelpers)
{
    EXPECT_EQ(envU64("CITADEL_SURELY_UNSET_VAR", 42), 42u);
    EXPECT_DOUBLE_EQ(envDouble("CITADEL_SURELY_UNSET_VAR", 1.5), 1.5);
    setenv("CITADEL_TEST_ENV_U64", "123", 1);
    EXPECT_EQ(envU64("CITADEL_TEST_ENV_U64", 0), 123u);
    setenv("CITADEL_TEST_ENV_U64", "bogus", 1);
    EXPECT_EQ(envU64("CITADEL_TEST_ENV_U64", 7), 7u);
    unsetenv("CITADEL_TEST_ENV_U64");
}

} // namespace
} // namespace citadel
