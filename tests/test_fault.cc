/**
 * @file
 * Tests for the fault-range algebra (DimSpec and Fault).
 */

#include <gtest/gtest.h>

#include "faults/fault.h"

namespace citadel {
namespace {

TEST(DimSpec, ExactMatchesOnlyItself)
{
    const DimSpec d = DimSpec::exact(5);
    EXPECT_TRUE(d.matches(5));
    EXPECT_FALSE(d.matches(4));
    EXPECT_FALSE(d.matches(0));
}

TEST(DimSpec, WildMatchesEverything)
{
    const DimSpec d = DimSpec::wild();
    for (u32 v : {0u, 1u, 1000u, 0xFFFFFFFFu})
        EXPECT_TRUE(d.matches(v));
}

TEST(DimSpec, MaskedMatchesHalfSpace)
{
    // Significant bit 3, value 0: matches all v with bit 3 clear.
    const DimSpec d = DimSpec::masked(0, 1u << 3);
    EXPECT_TRUE(d.matches(0));
    EXPECT_TRUE(d.matches(7));
    EXPECT_FALSE(d.matches(8));
    EXPECT_TRUE(d.matches(16));
    EXPECT_FALSE(d.matches(24));
}

TEST(DimSpec, IntersectionRules)
{
    const DimSpec a = DimSpec::exact(5);
    const DimSpec b = DimSpec::exact(6);
    const DimSpec w = DimSpec::wild();
    const DimSpec half0 = DimSpec::masked(0, 1); // even values
    const DimSpec half1 = DimSpec::masked(1, 1); // odd values

    EXPECT_TRUE(a.intersects(a));
    EXPECT_FALSE(a.intersects(b));
    EXPECT_TRUE(a.intersects(w));
    EXPECT_TRUE(w.intersects(w));
    EXPECT_FALSE(half0.intersects(half1));
    EXPECT_TRUE(half0.intersects(w));
    EXPECT_FALSE(half1.intersects(DimSpec::exact(4)));
    EXPECT_TRUE(half1.intersects(DimSpec::exact(5)));
}

TEST(DimSpec, Coverage)
{
    EXPECT_EQ(DimSpec::wild().coverage(16), 65536u);
    EXPECT_EQ(DimSpec::exact(3).coverage(16), 1u);
    EXPECT_EQ(DimSpec::masked(0, 1).coverage(16), 32768u);
    // Sub-array: 4096-row aligned block in a 64K-row bank.
    const u32 full = (1u << 16) - 1;
    EXPECT_EQ(DimSpec::masked(4096, full & ~4095u).coverage(16), 4096u);
}

class FaultTest : public ::testing::Test
{
  protected:
    StackGeometry geom_;

    Fault
    bitFault(u32 s, u32 ch, u32 b, u32 r, u32 c, u32 bit)
    {
        Fault f;
        f.cls = FaultClass::Bit;
        f.stack = DimSpec::exact(s);
        f.channel = DimSpec::exact(ch);
        f.bank = DimSpec::exact(b);
        f.row = DimSpec::exact(r);
        f.col = DimSpec::exact(c);
        f.bit = DimSpec::exact(bit);
        return f;
    }

    Fault
    bankFault(u32 s, u32 ch, u32 b)
    {
        Fault f;
        f.cls = FaultClass::Bank;
        f.stack = DimSpec::exact(s);
        f.channel = DimSpec::exact(ch);
        f.bank = DimSpec::exact(b);
        f.row = DimSpec::wild();
        f.col = DimSpec::wild();
        f.bit = DimSpec::wild();
        return f;
    }
};

TEST_F(FaultTest, CoversSpecificBit)
{
    const Fault f = bitFault(0, 2, 3, 100, 7, 200);
    EXPECT_TRUE(f.covers(StackId{0}, ChannelId{2}, BankId{3}, RowId{100}, ColId{7}, 200));
    EXPECT_FALSE(f.covers(StackId{0}, ChannelId{2}, BankId{3}, RowId{100}, ColId{7}, 201));
    EXPECT_FALSE(f.covers(StackId{1}, ChannelId{2}, BankId{3}, RowId{100}, ColId{7}, 200));
}

TEST_F(FaultTest, BankFaultCoversWholeBank)
{
    const Fault f = bankFault(1, 4, 5);
    EXPECT_TRUE(f.covers(StackId{1}, ChannelId{4}, BankId{5}, RowId{0}, ColId{0}, 0));
    EXPECT_TRUE(f.covers(StackId{1}, ChannelId{4}, BankId{5}, RowId{65535}, ColId{31}, 511));
    EXPECT_FALSE(f.covers(StackId{1}, ChannelId{4}, BankId{6}, RowId{0}, ColId{0}, 0));
    EXPECT_EQ(f.rowsCovered(geom_), 65536u);
    EXPECT_EQ(f.banksCovered(geom_), 1u);
    EXPECT_TRUE(f.singleBank(geom_));
}

TEST_F(FaultTest, IntersectsRequiresAllDims)
{
    const Fault a = bitFault(0, 1, 2, 3, 4, 5);
    const Fault b = bitFault(0, 1, 2, 3, 4, 6); // differs only in bit
    EXPECT_FALSE(a.intersects(b));
    const Fault bank = bankFault(0, 1, 2);
    EXPECT_TRUE(a.intersects(bank));
    const Fault other_bank = bankFault(0, 1, 3);
    EXPECT_FALSE(a.intersects(other_bank));
}

TEST_F(FaultTest, BitsPerLine)
{
    EXPECT_EQ(bitFault(0, 0, 0, 0, 0, 0).bitsPerLine(geom_), 1u);
    EXPECT_EQ(bankFault(0, 0, 0).bitsPerLine(geom_), 512u);

    Fault word = bitFault(0, 0, 0, 0, 0, 0);
    word.cls = FaultClass::Word;
    word.bit = DimSpec::masked(64, 0x1FF & ~63u);
    EXPECT_EQ(word.bitsPerLine(geom_), 64u);

    Fault dtsv = bankFault(0, 0, 0);
    dtsv.cls = FaultClass::DataTsv;
    dtsv.bank = DimSpec::wild();
    dtsv.bit = DimSpec::masked(3, 0xFF);
    EXPECT_EQ(dtsv.bitsPerLine(geom_), 2u);
}

TEST_F(FaultTest, ChannelsCovered)
{
    const Fault f = bankFault(0, 1, 2);
    EXPECT_EQ(f.channelsCovered(geom_), 1u);
    Fault ch = f;
    ch.channel = DimSpec::wild();
    EXPECT_EQ(ch.channelsCovered(geom_), geom_.channelsPerStack + 1);
}

TEST_F(FaultTest, DescribeIsInformative)
{
    const Fault f = bankFault(0, 1, 2);
    const std::string d = f.describe();
    EXPECT_NE(d.find("bank"), std::string::npos);
    EXPECT_NE(d.find("ch=1"), std::string::npos);
}

TEST(FaultClassName, TsvClassification)
{
    EXPECT_TRUE(isTsvClass(FaultClass::DataTsv));
    EXPECT_TRUE(isTsvClass(FaultClass::AddrTsvRow));
    EXPECT_TRUE(isTsvClass(FaultClass::AddrTsvBank));
    EXPECT_FALSE(isTsvClass(FaultClass::Bank));
    EXPECT_FALSE(isTsvClass(FaultClass::Channel));
    EXPECT_STREQ(faultClassName(FaultClass::SubArray), "subarray");
}

} // namespace
} // namespace citadel
