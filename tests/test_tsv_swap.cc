/**
 * @file
 * Tests for TSV-SWAP: the Monte Carlo decorator's absorption budget and
 * the bit-accurate redirection datapath of Fig 8.
 */

#include <gtest/gtest.h>

#include "citadel/three_d_parity.h"
#include "citadel/tsv_swap.h"
#include "fault_builders.h"

namespace citadel {
namespace {

using namespace testing_helpers;

class TsvSwapTest : public ::testing::Test
{
  protected:
    SystemConfig cfg_;

    TsvSwapScheme
    makeScheme(u32 standby = 4)
    {
        TsvSwapScheme s(std::make_unique<MultiDimParityScheme>(3), standby);
        s.reset(cfg_);
        return s;
    }
};

TEST_F(TsvSwapTest, AbsorbsTsvFaults)
{
    auto s = makeScheme();
    EXPECT_TRUE(s.absorb(dataTsvFault(0, 1, 7)));
    EXPECT_TRUE(s.absorb(addrTsvRowFault(0, 1, 3, 0)));
    EXPECT_TRUE(s.absorb(channelFault(0, 1))); // command-TSV fault
    EXPECT_EQ(s.repairsPerformed(), 3u);
}

TEST_F(TsvSwapTest, DoesNotAbsorbInternalFaults)
{
    auto s = makeScheme();
    EXPECT_FALSE(s.absorb(bankFault(0, 1, 2)));
    EXPECT_FALSE(s.absorb(bitFault(0, 1, 2, 3, 4, 5)));
    EXPECT_EQ(s.repairsPerformed(), 0u);
}

TEST_F(TsvSwapTest, PerChannelBudgetEnforced)
{
    auto s = makeScheme(2);
    EXPECT_TRUE(s.absorb(dataTsvFault(0, 1, 7)));
    EXPECT_TRUE(s.absorb(dataTsvFault(0, 1, 8)));
    // Third fault in the same channel exceeds the stand-by pool.
    EXPECT_FALSE(s.absorb(dataTsvFault(0, 1, 9)));
    // A different channel has its own pool.
    EXPECT_TRUE(s.absorb(dataTsvFault(0, 2, 9)));
    // Different stack, same channel index: separate pool.
    EXPECT_TRUE(s.absorb(dataTsvFault(1, 1, 9)));
}

TEST_F(TsvSwapTest, ResetRestoresBudget)
{
    auto s = makeScheme(1);
    EXPECT_TRUE(s.absorb(dataTsvFault(0, 1, 7)));
    EXPECT_FALSE(s.absorb(dataTsvFault(0, 1, 8)));
    s.reset(cfg_);
    EXPECT_TRUE(s.absorb(dataTsvFault(0, 1, 8)));
}

TEST_F(TsvSwapTest, DelegatesCorrectionToInner)
{
    auto s = makeScheme();
    // Un-absorbed faults are judged by the inner 3DP scheme.
    EXPECT_FALSE(s.uncorrectable({bankFault(0, 1, 2)}));
    EXPECT_TRUE(
        s.uncorrectable({bankFault(0, 1, 2), bankFault(0, 2, 5)}));
    EXPECT_EQ(s.name(), "TSV-Swap+3DP");
}

TEST_F(TsvSwapTest, ExhaustedPoolLetsTsvFaultThrough)
{
    auto s = makeScheme(0);
    EXPECT_FALSE(s.absorb(dataTsvFault(0, 1, 7)));
    // The un-repaired data-TSV fault is fatal for 3DP.
    EXPECT_TRUE(s.uncorrectable({dataTsvFault(0, 1, 7)}));
}

// --------------------------------------------------------------- datapath

TEST(TsvSwapDatapath, CleanTransferIsIdentity)
{
    TsvSwapDatapath dp(8, {TsvLane{0}, TsvLane{4}});
    std::vector<u8> in = {1, 2, 3, 4, 5, 6, 7, 8};
    EXPECT_EQ(dp.transfer(in), in);
    EXPECT_EQ(dp.standbyFree(), 2u);
}

TEST(TsvSwapDatapath, BrokenLaneCorruptsUntilRepaired)
{
    TsvSwapDatapath dp(8, {TsvLane{0}, TsvLane{4}});
    std::vector<u8> in = {1, 2, 3, 4, 5, 6, 7, 8};
    dp.breakTsv(TsvLane{2});
    auto out = dp.transfer(in);
    EXPECT_EQ(out[2], 0); // stuck-at-0
    EXPECT_EQ(out[3], 4);

    ASSERT_TRUE(dp.repair(TsvLane{2}));
    out = dp.transfer(in);
    EXPECT_EQ(out[2], 3); // lane 2's payload routed via a stand-by TSV
    EXPECT_EQ(dp.standbyFree(), 1u);
}

TEST(TsvSwapDatapath, PoolExhaustion)
{
    TsvSwapDatapath dp(8, {TsvLane{0}});
    dp.breakTsv(TsvLane{2});
    dp.breakTsv(TsvLane{3});
    EXPECT_TRUE(dp.repair(TsvLane{2}));
    EXPECT_FALSE(dp.repair(TsvLane{3})); // only one stand-by TSV
}

TEST(TsvSwapDatapath, BrokenStandbyIsSkipped)
{
    TsvSwapDatapath dp(8, {TsvLane{0}, TsvLane{4}});
    dp.breakTsv(TsvLane{0}); // the first stand-by TSV itself is faulty
    dp.breakTsv(TsvLane{2});
    EXPECT_EQ(dp.standbyFree(), 1u);
    ASSERT_TRUE(dp.repair(TsvLane{2}));
    std::vector<u8> in = {1, 2, 3, 4, 5, 6, 7, 8};
    EXPECT_EQ(dp.transfer(in)[2], 3);
}

TEST(TsvSwapDatapath, RepairIsIdempotent)
{
    TsvSwapDatapath dp(8, {TsvLane{0}, TsvLane{4}});
    dp.breakTsv(TsvLane{2});
    EXPECT_TRUE(dp.repair(TsvLane{2}));
    EXPECT_TRUE(dp.repair(TsvLane{2}));
    EXPECT_EQ(dp.standbyFree(), 1u); // second repair consumed nothing
}

TEST(TsvSwapDatapath, OutOfRangeDies)
{
    TsvSwapDatapath dp(8, {TsvLane{0}});
    EXPECT_DEATH(dp.breakTsv(TsvLane{8}), "out of range");
    std::vector<u8> wrong(7);
    EXPECT_DEATH(dp.transfer(wrong), "expected");
}

} // namespace
} // namespace citadel
