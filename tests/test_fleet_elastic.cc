/**
 * @file
 * Fleet elasticity tests (DESIGN.md §16): server join/rejoin through
 * the Fenced -> Warming -> Serving path, the warm-fill CRC handshake,
 * load-driven hot-shard migration under zipf skew, and the campaign
 * checkpoint/resume contract — a resumed campaign must fingerprint
 * bit-identically to an uninterrupted one, at any cut point, for any
 * thread count, under full chaos.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fleet/fleet_sim.h"

using namespace citadel;
using namespace citadel::fleet;

namespace {

FleetConfig
elasticConfig()
{
    FleetConfig cfg = FleetConfig::demo();
    cfg.servers = 4;
    cfg.ticks = 384;
    cfg.users = 1000;
    cfg.keySpace = 96;
    cfg.arrivalsPerTick = 3;
    cfg.retry.attemptTimeout = 24;
    cfg.retry.opDeadline = 320;
    cfg.retry.hedgeAfter = 8;
    cfg.retry.maxAttempts = 6;
    cfg.coord.healthEvery = 8;
    cfg.coord.failThreshold = 2;
    cfg.server.defaultServiceUnits = 24;
    cfg.server.calibrationInsns = 0;
    cfg.threads = 1;
    return cfg;
}

// ---- The transition table ------------------------------------------

// The elasticity invariant, checked exhaustively over every state
// pair: the only edge from outside Serving back into Serving is
// Warming -> Up (the coordinator's CRC-checked admission).
TEST(ServerLifecycle, OnlyWarmingReentersServing)
{
    const ServerState all[] = {
        ServerState::Up,      ServerState::Stalled,
        ServerState::Slowed,  ServerState::Fenced,
        ServerState::Crashed, ServerState::Warming,
    };
    for (const ServerState from : all) {
        for (const ServerState to : all) {
            const bool allowed = serverTransitionAllowed(from, to);
            SCOPED_TRACE(std::string(serverStateName(from)) + " -> " +
                         serverStateName(to));
            if (from == to)
                EXPECT_FALSE(allowed); // Self-loops are not edges.
            if (!serverStateServing(from) && serverStateServing(to) &&
                allowed) {
                EXPECT_EQ(from, ServerState::Warming);
                EXPECT_EQ(to, ServerState::Up);
            }
        }
    }
    // The table's positive spine: restart -> warm -> admit.
    EXPECT_TRUE(serverTransitionAllowed(ServerState::Crashed,
                                        ServerState::Fenced));
    EXPECT_TRUE(serverTransitionAllowed(ServerState::Fenced,
                                        ServerState::Warming));
    EXPECT_TRUE(serverTransitionAllowed(ServerState::Warming,
                                        ServerState::Up));
    // And the edges the invariant exists to forbid.
    EXPECT_FALSE(serverTransitionAllowed(ServerState::Fenced,
                                         ServerState::Up));
    EXPECT_FALSE(serverTransitionAllowed(ServerState::Crashed,
                                         ServerState::Up));
    EXPECT_FALSE(serverTransitionAllowed(ServerState::Crashed,
                                         ServerState::Warming));
    EXPECT_FALSE(serverTransitionAllowed(ServerState::Up,
                                         ServerState::Warming));
}

TEST(ServerLifecycleDeath, IllegalEdgesAreFatal)
{
    const ServerConfig scfg = elasticConfig().server;
    StackServer srv(0, scfg, /*seed=*/1, /*campaign_ticks=*/64);
    ThreadRoleGrant serial(kSerialPhase);
    srv.crash();
    srv.restart();
    ASSERT_EQ(srv.state(), ServerState::Fenced);
    // Fenced -> Up without warming: the exact bypass the table exists
    // to make impossible.
    EXPECT_DEATH(srv.admit(0), "admit outside Warming");
}

// ---- Join / rejoin e2e ---------------------------------------------

TEST(ElasticJoin, CrashedServerRejoinsWarmFilledAndServing)
{
    // Kill each server in turn, restart it 64 ticks later, and demand
    // the full rejoin path: eviction, warm fill from live replicas,
    // CRC-checked admission, and a clean durability audit with the
    // whole fleet back in service.
    for (u32 victim = 0; victim < 4; ++victim) {
        FleetConfig cfg = elasticConfig();
        cfg.chaos.enabled = false;
        FleetCampaign campaign(cfg);

        ChaosEvent kill;
        kill.kind = ChaosEvent::Kind::Crash;
        kill.server = victim;
        kill.tick = 96;
        campaign.injectChaosEvent(kill);
        ChaosEvent back;
        back.kind = ChaosEvent::Kind::Restart;
        back.server = victim;
        back.tick = 160;
        campaign.injectChaosEvent(back);

        const FleetResult res = campaign.run();
        SCOPED_TRACE("victim " + std::to_string(victim));
        EXPECT_EQ(res.totals.serverCrashes, 1u);
        EXPECT_GE(res.totals.failovers, 1u);
        EXPECT_GE(res.totals.serverJoins, 1u);
        EXPECT_GT(res.totals.warmFills, 0u);
        EXPECT_EQ(res.totals.warmAborts, 0u);

        // The whole fleet is back: the rejoined server is serving and
        // in the ring.
        EXPECT_EQ(res.liveServers, 4u);
        ASSERT_EQ(res.servers.size(), 4u);
        EXPECT_EQ(res.servers[victim].state, ServerState::Up);
        EXPECT_GT(res.servers[victim].kvKeys, 0u);

        // Durability across the crash + rejoin.
        EXPECT_GT(res.auditedWrites, 0u);
        EXPECT_EQ(res.lostAckedWrites, 0u);
        EXPECT_EQ(res.corruptAckedWrites, 0u);
        EXPECT_EQ(res.divergences, 0u);
    }
}

TEST(ElasticJoin, EvictedButAliveServerRejoinsWithoutRestart)
{
    // A long stall gets a server evicted (probes missed) without a
    // crash; once the stall window ends a scripted Restart event asks
    // the (Fenced, data intact) server to rejoin.
    FleetConfig cfg = elasticConfig();
    cfg.chaos.enabled = false;
    FleetCampaign campaign(cfg);

    ChaosEvent stall;
    stall.kind = ChaosEvent::Kind::Stall;
    stall.server = 2;
    stall.tick = 96;
    stall.duration = 48; // Outlasts failThreshold * healthEvery.
    campaign.injectChaosEvent(stall);
    ChaosEvent back;
    back.kind = ChaosEvent::Kind::Restart;
    back.server = 2;
    back.tick = 192;
    campaign.injectChaosEvent(back);

    const FleetResult res = campaign.run();
    EXPECT_EQ(res.totals.serverCrashes, 0u);
    EXPECT_GE(res.totals.failovers, 1u);
    EXPECT_GE(res.totals.serverJoins, 1u);
    EXPECT_EQ(res.liveServers, 4u);
    EXPECT_EQ(res.servers[2].state, ServerState::Up);
    EXPECT_EQ(res.lostAckedWrites, 0u);
    EXPECT_EQ(res.corruptAckedWrites, 0u);
}

TEST(ElasticJoin, SampledCrashesRejoinViaDerivedRestarts)
{
    // Full chaos with restartAfterTicks: every sampled crash (and
    // every stall-eviction) derives a restart, and the campaign must
    // end with every server rejoined and serving — including events
    // near the campaign end whose restart lands after the last tick
    // (finish() fires those before the elastic drain).
    FleetConfig cfg = elasticConfig();
    cfg.chaos.crashes = 2;
    cfg.chaos.restartAfterTicks = 64;
    cfg.seed = 5;
    FleetCampaign campaign(cfg);
    const FleetResult res = campaign.run();
    EXPECT_GE(res.totals.serverCrashes, 1u);
    EXPECT_GE(res.totals.serverJoins, res.totals.serverCrashes);
    EXPECT_EQ(res.liveServers, 4u);
    for (u32 s = 0; s < 4; ++s)
        EXPECT_TRUE(serverStateServing(res.servers[s].state))
            << "server " << s;
    EXPECT_EQ(res.lostAckedWrites, 0u);
    EXPECT_EQ(res.corruptAckedWrites, 0u);
    EXPECT_EQ(res.divergences, 0u);
}

TEST(ElasticJoin, RestartScheduleDisabledKeepsCrashesPermanent)
{
    // restartAfterTicks = 0 must reproduce pre-elasticity behavior
    // exactly: same schedule, no joins, crashed server stays out.
    FleetConfig cfg = elasticConfig();
    cfg.chaos.crashes = 1;
    cfg.chaos.stalls = 0;
    cfg.chaos.slowdowns = 0;
    cfg.seed = 5;
    FleetCampaign withOff(cfg);
    cfg.chaos.restartAfterTicks = 64;
    FleetCampaign withOn(cfg);
    // The derived restarts perturb no other event's placement.
    const auto &off = withOff.chaosSchedule();
    const auto &on = withOn.chaosSchedule();
    ASSERT_EQ(on.size(), off.size() + 1);
    std::size_t j = 0;
    for (const ChaosEvent &ev : on) {
        if (ev.kind == ChaosEvent::Kind::Restart)
            continue;
        ASSERT_LT(j, off.size());
        EXPECT_EQ(ev.tick, off[j].tick);
        EXPECT_EQ(ev.server, off[j].server);
        EXPECT_EQ(static_cast<int>(ev.kind),
                  static_cast<int>(off[j].kind));
        ++j;
    }
    EXPECT_EQ(j, off.size());

    const FleetResult res = withOff.run();
    EXPECT_EQ(res.totals.serverJoins, 0u);
    EXPECT_EQ(res.totals.warmFills, 0u);
    EXPECT_EQ(res.liveServers, 3u);
}

// ---- Load-driven rebalance -----------------------------------------

FleetConfig
rebalanceConfig()
{
    FleetConfig cfg = elasticConfig();
    cfg.chaos.enabled = false;
    cfg.ticks = 1; // Overridden by the trace.
    // Heavy zipf skew concentrates load on a handful of keys; their
    // primaries overload while the rest of the fleet idles.
    cfg.traffic = "ticks=320,rate=6,write=0.5,zipf=1.2";
    cfg.coord.rebalanceEnabled = true;
    cfg.coord.minRoundLoad = 4;
    cfg.coord.overloadFactor = 1.25;
    cfg.coord.hotRounds = 2;
    cfg.coord.migratePerRound = 2;
    return cfg;
}

TEST(ElasticRebalance, ZipfSkewMigratesHotShards)
{
    FleetCampaign campaign(rebalanceConfig());
    const FleetResult res = campaign.run();
    EXPECT_GE(res.totals.loadMigrations, 1u);
    // Migration must never cost durability.
    EXPECT_GT(res.auditedWrites, 0u);
    EXPECT_EQ(res.lostAckedWrites, 0u);
    EXPECT_EQ(res.corruptAckedWrites, 0u);
    EXPECT_EQ(res.divergences, 0u);
    EXPECT_EQ(res.liveServers, 4u);
}

TEST(ElasticRebalance, DisabledByDefaultMovesNothing)
{
    FleetConfig cfg = rebalanceConfig();
    cfg.coord.rebalanceEnabled = false;
    FleetCampaign campaign(cfg);
    const FleetResult res = campaign.run();
    EXPECT_EQ(res.totals.loadMigrations, 0u);
    EXPECT_EQ(res.lostAckedWrites, 0u);
}

TEST(ElasticRebalance, InvariantAcrossThreadCounts)
{
    // Rebalance decisions (EWMA folds, hot-key sorts, overrides) are
    // serial-phase state: the fingerprint must not see thread count.
    FleetResult ref;
    bool haveRef = false;
    for (const unsigned threads : {1u, 3u}) {
        FleetConfig cfg = rebalanceConfig();
        cfg.threads = threads;
        FleetCampaign campaign(cfg);
        const FleetResult res = campaign.run();
        if (!haveRef) {
            ref = res;
            haveRef = true;
            EXPECT_GE(res.totals.loadMigrations, 1u);
            continue;
        }
        SCOPED_TRACE("threads " + std::to_string(threads));
        EXPECT_EQ(res.fingerprint, ref.fingerprint);
        EXPECT_EQ(res.totals.loadMigrations,
                  ref.totals.loadMigrations);
    }
}

// ---- Checkpoint / resume -------------------------------------------

FleetConfig
checkpointConfig()
{
    // Everything on at once: chaos (crashes + derived restarts,
    // stalls, slowdowns, drops, dups), rebalance, wire transport —
    // the checkpoint must capture all of it.
    FleetConfig cfg = elasticConfig();
    cfg.ticks = 192;
    cfg.chaos.restartAfterTicks = 48;
    cfg.coord.rebalanceEnabled = true;
    cfg.coord.minRoundLoad = 4;
    cfg.coord.overloadFactor = 1.25;
    cfg.seed = 3;
    return cfg;
}

TEST(ElasticCheckpoint, ResumeIsBitIdenticalAtAnyCutPoint)
{
    const FleetConfig cfg = checkpointConfig();
    FleetCampaign reference(cfg);
    const FleetResult ref = reference.run();
    ASSERT_GT(ref.totals.opsAcked, 0u);
    ASSERT_NE(ref.fingerprint, 0u);
    EXPECT_EQ(ref.totals.resumes, 0u);

    // Cut points: first tick, mid-chaos, one tick before the end.
    for (const u64 cut : {u64{1}, u64{97}, cfg.ticks - 1}) {
        FleetCampaign first(cfg);
        first.advanceTo(cut);
        ByteSink sink;
        first.saveState(sink);

        // Resume into a fresh campaign — and a different thread count
        // than the one that produced the checkpoint.
        FleetConfig cfg2 = cfg;
        cfg2.threads = 3;
        FleetCampaign second(cfg2);
        ByteSource src(sink.bytes());
        second.loadState(src);
        EXPECT_EQ(src.remaining(), 0u);
        EXPECT_EQ(second.tick(), cut);

        const FleetResult res = second.finish();
        SCOPED_TRACE("cut " + std::to_string(cut));
        EXPECT_EQ(res.fingerprint, ref.fingerprint);
        EXPECT_EQ(res.totals.opsAcked, ref.totals.opsAcked);
        EXPECT_EQ(res.totals.serverJoins, ref.totals.serverJoins);
        EXPECT_EQ(res.totals.loadMigrations,
                  ref.totals.loadMigrations);
        EXPECT_EQ(res.lostAckedWrites, 0u);
        // The resume itself is visible in the counters but not in the
        // fingerprint.
        EXPECT_EQ(res.totals.resumes, 1u);
    }
}

TEST(ElasticCheckpoint, ChainedResumesStayBitIdentical)
{
    // save -> resume -> save -> resume: resumes compose.
    const FleetConfig cfg = checkpointConfig();
    FleetCampaign reference(cfg);
    const FleetResult ref = reference.run();

    FleetCampaign a(cfg);
    a.advanceTo(64);
    ByteSink s1;
    a.saveState(s1);

    FleetCampaign b(cfg);
    ByteSource r1(s1.bytes());
    b.loadState(r1);
    b.advanceTo(128);
    ByteSink s2;
    b.saveState(s2);

    FleetCampaign c(cfg);
    ByteSource r2(s2.bytes());
    c.loadState(r2);
    const FleetResult res = c.finish();
    EXPECT_EQ(res.fingerprint, ref.fingerprint);
    EXPECT_EQ(res.totals.resumes, 2u);
}

TEST(ElasticCheckpoint, DirectTransportRoundTripsToo)
{
    // The Direct (multimap, ordered-engine) path serializes its own
    // in-flight representation; it must round-trip just as exactly.
    FleetConfig cfg = checkpointConfig();
    cfg.transport = TransportMode::Direct;
    FleetCampaign reference(cfg);
    const FleetResult ref = reference.run();

    FleetCampaign first(cfg);
    first.advanceTo(97);
    ByteSink sink;
    first.saveState(sink);
    FleetCampaign second(cfg);
    ByteSource src(sink.bytes());
    second.loadState(src);
    EXPECT_EQ(src.remaining(), 0u);
    const FleetResult res = second.finish();
    EXPECT_EQ(res.fingerprint, ref.fingerprint);
}

TEST(ElasticCheckpointDeath, MismatchedScheduleIsRejected)
{
    const FleetConfig cfg = checkpointConfig();
    FleetCampaign first(cfg);
    first.advanceTo(32);
    ByteSink sink;
    first.saveState(sink);

    // A campaign with an extra scripted event has a different chaos
    // schedule: the checkpoint must refuse to load into it.
    FleetCampaign other(cfg);
    ChaosEvent kill;
    kill.kind = ChaosEvent::Kind::Crash;
    kill.server = 1;
    kill.tick = 50;
    other.injectChaosEvent(kill);
    ByteSource src(sink.bytes());
    EXPECT_DEATH(other.loadState(src), "schedule");
}

} // namespace
