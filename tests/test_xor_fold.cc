/**
 * @file
 * Tests for the word-wide XOR fold (common/xor_fold.h) that replaced
 * the parity engine's byte loops: must match a byte-at-a-time oracle
 * for every length and alignment, since parity reconstruction depends
 * on exact XOR algebra.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "common/xor_fold.h"

namespace citadel {
namespace {

void
xorFoldOracle(u8 *dst, const u8 *src, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = static_cast<u8>(dst[i] ^ src[i]);
}

std::vector<u8>
randomBytes(Rng &rng, std::size_t n)
{
    std::vector<u8> v(n);
    for (auto &b : v)
        b = static_cast<u8>(rng.next());
    return v;
}

TEST(XorFold, MatchesByteOracleAcrossLengths)
{
    Rng rng(1);
    // 0..257 hits the empty case, the pure-tail cases (<8), every
    // chunk/tail split around the u64 boundary, and multi-chunk runs.
    for (std::size_t n = 0; n <= 257; ++n) {
        const auto src = randomBytes(rng, n);
        auto a = randomBytes(rng, n);
        auto b = a;
        xorFold(a.data(), src.data(), n);
        xorFoldOracle(b.data(), src.data(), n);
        ASSERT_EQ(a, b) << "length " << n;
    }
}

TEST(XorFold, MatchesByteOracleAtUnalignedOffsets)
{
    Rng rng(2);
    const std::size_t kLen = 96;
    // Slide both dst and src across all offsets within a u64 so the
    // memcpy-based loads/stores are exercised at every misalignment.
    const auto src_buf = randomBytes(rng, kLen + 8);
    for (std::size_t doff = 0; doff < 8; ++doff) {
        for (std::size_t soff = 0; soff < 8; ++soff) {
            auto a = randomBytes(rng, kLen + 8);
            auto b = a;
            xorFold(a.data() + doff, src_buf.data() + soff, kLen);
            xorFoldOracle(b.data() + doff, src_buf.data() + soff, kLen);
            ASSERT_EQ(a, b) << "dst+" << doff << " src+" << soff;
        }
    }
}

TEST(XorFold, SelfInverse)
{
    Rng rng(3);
    const auto src = randomBytes(rng, 200);
    const auto orig = randomBytes(rng, 200);
    auto acc = orig;
    xorFold(acc.data(), src.data(), acc.size());
    EXPECT_NE(acc, orig);
    xorFold(acc.data(), src.data(), acc.size());
    EXPECT_EQ(acc, orig);
}

TEST(XorFold, ParityOfManySources)
{
    // Fold k sources into a zero accumulator; the result must equal
    // the column-wise XOR — exactly how the parity engine builds P1.
    Rng rng(4);
    constexpr std::size_t kLen = 123;
    constexpr int kSources = 9;
    std::vector<std::vector<u8>> sources;
    for (int i = 0; i < kSources; ++i)
        sources.push_back(randomBytes(rng, kLen));

    std::vector<u8> acc(kLen, 0);
    for (const auto &s : sources)
        xorFold(acc.data(), s.data(), kLen);

    for (std::size_t j = 0; j < kLen; ++j) {
        u8 want = 0;
        for (const auto &s : sources)
            want = static_cast<u8>(want ^ s[j]);
        ASSERT_EQ(acc[j], want) << "column " << j;
    }
}

} // namespace
} // namespace citadel
