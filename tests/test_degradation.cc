/**
 * @file
 * Degradation-ladder and control-plane self-protection tests.
 *
 * Units first (RetirementMap steering, DegradationLadder rung
 * escalation, BoundedPoisonSet cap semantics, ProtectedMetaStore scrub
 * outcomes), then the datapath end-to-end scenarios the issue names:
 * spare exhaustion past the 4-row/2-bank DDS budget escalating through
 * SparingDenied to bank retirement with steered reads, and metadata
 * record loss reactivating the covered fault with the no-overclaim
 * differential invariant held throughout.
 */

#include <gtest/gtest.h>

#include "fault_builders.h"
#include "ras/live_datapath.h"
#include "ras/poison_set.h"

namespace citadel {
namespace {

using namespace testing_helpers;

// ------------------------------------------------------------------
// RetirementMap: steering and capacity accounting.
// ------------------------------------------------------------------

class RetirementMapTest : public ::testing::Test
{
  protected:
    StackGeometry geom_ = StackGeometry::tiny();
    RetirementMap map_{geom_};

    LineCoord
    at(u32 ch, u32 b, u32 r, u32 c) const
    {
        return {StackId{0}, ChannelId{ch}, BankId{b}, RowId{r},
                ColId{c}};
    }
};

TEST_F(RetirementMapTest, OfflinedRowSteersDeterministically)
{
    const LineCoord c = at(0, 0, 5, 1);
    EXPECT_FALSE(map_.retired(c));
    EXPECT_EQ(map_.route(c), c); // healthy coordinates pass through

    EXPECT_TRUE(map_.offlineRow(c.stack, c.channel, c.bank, c.row));
    EXPECT_FALSE(map_.offlineRow(c.stack, c.channel, c.bank, c.row));
    EXPECT_TRUE(map_.retired(c));

    const LineCoord r1 = map_.route(c);
    const LineCoord r2 = map_.route(c);
    EXPECT_EQ(r1, r2); // steering is deterministic
    EXPECT_FALSE(map_.retired(r1));
    EXPECT_NE(r1, c);
}

TEST_F(RetirementMapTest, CapacityCountsRegionsOnce)
{
    // tiny(): 2 ch x 2 banks x 64 rows x 4 lines/row = 1024 lines.
    EXPECT_TRUE(map_.retireBank(StackId{0}, ChannelId{1}, BankId{0}));
    EXPECT_EQ(map_.retiredLines(), 256u);
    EXPECT_DOUBLE_EQ(map_.capacityFraction(), 0.75);

    // An offlined row inside the retired bank must not double-count.
    map_.offlineRow(StackId{0}, ChannelId{1}, BankId{0}, RowId{3});
    EXPECT_EQ(map_.retiredLines(), 256u);

    // Degrading the channel swallows the bank already retired in it.
    EXPECT_TRUE(map_.degradeChannel(StackId{0}, ChannelId{1}));
    EXPECT_EQ(map_.retiredLines(), 512u);
    EXPECT_DOUBLE_EQ(map_.capacityFraction(), 0.5);
    EXPECT_EQ(map_.retiredBanksIn(StackId{0}, ChannelId{1}), 1u);
}

TEST_F(RetirementMapTest, RouteWithNowhereLeftReturnsInput)
{
    for (u32 ch = 0; ch < geom_.channelsPerStack; ++ch)
        for (u32 b = 0; b < geom_.banksPerChannel; ++b)
            map_.retireBank(StackId{0}, ChannelId{ch}, BankId{b});
    const LineCoord c = at(0, 1, 9, 0);
    EXPECT_TRUE(map_.retired(c));
    EXPECT_EQ(map_.route(c), c); // every bank gone: nowhere to steer
}

TEST_F(RetirementMapTest, SerializeRoundTripsExactly)
{
    map_.offlineRow(StackId{0}, ChannelId{0}, BankId{1}, RowId{7});
    map_.retireBank(StackId{0}, ChannelId{1}, BankId{1});
    ByteSink sink;
    map_.serialize(sink);

    RetirementMap other(geom_);
    ByteSource src(sink.bytes());
    other.deserialize(src);
    EXPECT_EQ(src.remaining(), 0u);
    EXPECT_TRUE(other.rowOffline(StackId{0}, ChannelId{0}, BankId{1},
                                 RowId{7}));
    EXPECT_TRUE(other.bankRetired(StackId{0}, ChannelId{1}, BankId{1}));
    EXPECT_EQ(other.retiredLines(), map_.retiredLines());

    ByteSink again;
    other.serialize(again);
    EXPECT_EQ(again.bytes(), sink.bytes());
}

// ------------------------------------------------------------------
// DegradationLadder: rung escalation.
// ------------------------------------------------------------------

TEST(DegradationLadderTest, PageCapEscalatesToBankThenChannel)
{
    DegradationOptions opts;
    opts.pagesPerBankCap = 2;
    opts.retiredBanksPerChannelCap = 1;
    DegradationLadder ladder(StackGeometry::tiny(), opts);

    const LineCoord a{StackId{0}, ChannelId{0}, BankId{0}, RowId{1},
                      ColId{0}};
    DegradationLadder::Action act = ladder.onDue(a);
    EXPECT_TRUE(act.rowOfflined);
    EXPECT_FALSE(act.bankRetired);

    // Same row again: already offline, nothing climbs.
    EXPECT_FALSE(ladder.onDue(a).any());

    // Second distinct page hits the per-bank cap; with the channel cap
    // at one retired bank the same event climbs both rungs.
    const LineCoord b{StackId{0}, ChannelId{0}, BankId{0}, RowId{2},
                      ColId{0}};
    act = ladder.onDue(b);
    EXPECT_TRUE(act.rowOfflined);
    EXPECT_TRUE(act.bankRetired);
    EXPECT_TRUE(act.channelDegraded);
    EXPECT_TRUE(ladder.map().channelDegraded(StackId{0}, ChannelId{0}));
}

TEST(DegradationLadderTest, SparingDeniedRetiresBankImmediately)
{
    DegradationLadder ladder(StackGeometry::tiny(), DegradationOptions{});
    const DegradationLadder::Action act =
        ladder.onSparingDenied(StackId{0}, ChannelId{1}, BankId{1});
    EXPECT_TRUE(act.bankRetired);
    EXPECT_FALSE(act.channelDegraded);
    EXPECT_TRUE(ladder.map().bankRetired(StackId{0}, ChannelId{1},
                                         BankId{1}));
    // Retiring the same bank twice does not climb again.
    EXPECT_FALSE(
        ladder.onSparingDenied(StackId{0}, ChannelId{1}, BankId{1})
            .any());
}

TEST(DegradationLadderTest, RefaultStrikesAccumulateToRetirement)
{
    DegradationOptions opts;
    opts.strikesPerBank = 3;
    DegradationLadder ladder(StackGeometry::tiny(), opts);

    EXPECT_FALSE(
        ladder.onRefault(StackId{0}, ChannelId{0}, BankId{1}).any());
    EXPECT_FALSE(
        ladder.onRefault(StackId{0}, ChannelId{0}, BankId{1}).any());
    const DegradationLadder::Action act =
        ladder.onRefault(StackId{0}, ChannelId{0}, BankId{1});
    EXPECT_TRUE(act.bankRetired);
}

TEST(DegradationLadderTest, SerializeRoundTripsStrikes)
{
    DegradationOptions opts;
    opts.strikesPerBank = 3;
    DegradationLadder ladder(StackGeometry::tiny(), opts);
    ladder.onRefault(StackId{0}, ChannelId{1}, BankId{0});
    ladder.onRefault(StackId{0}, ChannelId{1}, BankId{0});
    ladder.onDue({StackId{0}, ChannelId{0}, BankId{0}, RowId{4},
                  ColId{0}});

    ByteSink sink;
    ladder.serialize(sink);
    DegradationLadder other(StackGeometry::tiny(), opts);
    ByteSource src(sink.bytes());
    other.deserialize(src);
    EXPECT_EQ(src.remaining(), 0u);

    // The restored ladder is one strike away from retirement, exactly
    // like the original.
    const DegradationLadder::Action act =
        other.onRefault(StackId{0}, ChannelId{1}, BankId{0});
    EXPECT_TRUE(act.bankRetired);
    EXPECT_TRUE(other.map().rowOffline(StackId{0}, ChannelId{0},
                                       BankId{0}, RowId{4}));
}

// ------------------------------------------------------------------
// BoundedPoisonSet: documented memory bound + over-approximation.
// ------------------------------------------------------------------

TEST(BoundedPoisonSetTest, InsertDedupesAndCoalesces)
{
    BoundedPoisonSet set(16);
    EXPECT_TRUE(set.insert(LineAddr{10}));
    EXPECT_FALSE(set.insert(LineAddr{10})); // dedup: not fresh
    EXPECT_TRUE(set.insert(LineAddr{12}));
    EXPECT_EQ(set.runCount(), 2u);

    // Filling the gap coalesces [10,11) + [11,12) + [12,13) into one.
    EXPECT_TRUE(set.insert(LineAddr{11}));
    EXPECT_EQ(set.runCount(), 1u);
    EXPECT_TRUE(set.contains(LineAddr{10}));
    EXPECT_TRUE(set.contains(LineAddr{11}));
    EXPECT_TRUE(set.contains(LineAddr{12}));
    EXPECT_FALSE(set.contains(LineAddr{13}));
    EXPECT_FALSE(set.overApproximated());
}

TEST(BoundedPoisonSetTest, CapMergesSmallestGapAndOverApproximates)
{
    BoundedPoisonSet set(2);
    set.insert(LineAddr{0});
    set.insert(LineAddr{100});
    EXPECT_EQ(set.runCount(), 2u);
    EXPECT_FALSE(set.overApproximated());

    // A third run violates the cap; the smallest gap (100 -> 103) is
    // swallowed, so 101-102 now read as poisoned: over-approximation,
    // never under-approximation.
    set.insert(LineAddr{103});
    EXPECT_LE(set.runCount(), 2u);
    EXPECT_TRUE(set.overApproximated());
    EXPECT_TRUE(set.contains(LineAddr{0}));
    EXPECT_TRUE(set.contains(LineAddr{100}));
    EXPECT_TRUE(set.contains(LineAddr{103}));
    EXPECT_TRUE(set.contains(LineAddr{101})); // swallowed gap
    EXPECT_FALSE(set.contains(LineAddr{50})); // big gap survives
}

TEST(BoundedPoisonSetTest, RunCountNeverExceedsCapUnderStorm)
{
    BoundedPoisonSet set(8);
    // Worst case for a run representation: strided addresses that
    // never coalesce naturally.
    for (u64 i = 0; i < 1000; ++i)
        set.insert(LineAddr{i * 7});
    EXPECT_LE(set.runCount(), 8u);
    EXPECT_TRUE(set.overApproximated());
    for (u64 i = 0; i < 1000; ++i)
        EXPECT_TRUE(set.contains(LineAddr{i * 7})) << i;
}

TEST(BoundedPoisonSetTest, SerializeRoundTripsExactly)
{
    BoundedPoisonSet set(4);
    for (u64 a : {5u, 6u, 90u, 200u, 300u, 400u})
        set.insert(LineAddr{a});
    ByteSink sink;
    set.serialize(sink);

    BoundedPoisonSet other(4);
    ByteSource src(sink.bytes());
    other.deserialize(src);
    EXPECT_EQ(src.remaining(), 0u);
    EXPECT_EQ(other.runCount(), set.runCount());
    EXPECT_EQ(other.overApproximated(), set.overApproximated());
    ByteSink again;
    other.serialize(again);
    EXPECT_EQ(again.bytes(), sink.bytes());
}

// ------------------------------------------------------------------
// ProtectedMetaStore: the scrub escalation order.
// ------------------------------------------------------------------

class MetaStoreTest : public ::testing::Test
{
  protected:
    ProtectedMetaStore::RecordKey
    rrtKey(u32 unit, u32 slot) const
    {
        return {MetaTarget::RrtEntry, StackId{0}, UnitId{unit},
                MetaSlotId{slot}};
    }

    MetaFault
    hit(u32 unit, u32 slot, u64 flip, u64 mirror_flip,
        bool transient) const
    {
        MetaFault f;
        f.target = MetaTarget::RrtEntry;
        f.stack = StackId{0};
        f.unit = UnitId{unit};
        f.slot = MetaSlotId{slot};
        f.flipMask = flip;
        f.mirrorFlipMask = mirror_flip;
        f.transient = transient;
        return f;
    }
};

TEST_F(MetaStoreTest, SingleBitFlipIsCorrectedInPlace)
{
    ProtectedMetaStore store;
    store.install(rrtKey(0, 0), 0xDEADBEEFu);
    ASSERT_EQ(store.applyFault(hit(0, 0, 1ull << 13, 0, false)),
              ProtectedMetaStore::ApplyResult::Applied);

    const ProtectedMetaStore::ScrubOutcome out = store.scrub();
    EXPECT_EQ(out.checked, 1u);
    EXPECT_EQ(out.corrected, 1u);
    EXPECT_EQ(out.retries, 0u); // SECDED fixed it; no retry needed
    EXPECT_TRUE(out.lost.empty());
    EXPECT_EQ(store.payload(rrtKey(0, 0)), 0xDEADBEEFu);

    // A second scrub finds nothing left to fix.
    EXPECT_EQ(store.scrub().corrected, 0u);
}

TEST_F(MetaStoreTest, TransientMultiBitClearsOnRetryWithBackoff)
{
    ProtectedMetaStore::Options opts;
    opts.retryMax = 3;
    opts.backoffCycles = 16;
    ProtectedMetaStore store(opts);
    store.install(rrtKey(1, 2), 0x1234u);
    store.applyFault(hit(1, 2, 0b101, 0, /*transient=*/true));

    const ProtectedMetaStore::ScrubOutcome out = store.scrub();
    EXPECT_GE(out.retries, 1u);
    EXPECT_GE(out.backoffCyclesSpent, 16u);
    EXPECT_EQ(out.mirrorRestores, 0u); // retry alone recovered it
    EXPECT_TRUE(out.lost.empty());
    EXPECT_TRUE(store.exists(rrtKey(1, 2)));
}

TEST_F(MetaStoreTest, PermanentMultiBitRestoresFromMirror)
{
    ProtectedMetaStore::Options opts;
    opts.retryMax = 2;
    opts.backoffCycles = 8;
    ProtectedMetaStore store(opts);
    store.install(rrtKey(2, 1), 0x77u);
    store.applyFault(hit(2, 1, 0b11000, 0, /*transient=*/false));

    const ProtectedMetaStore::ScrubOutcome out = store.scrub();
    // Re-reading stuck cells cannot help: no retries are burned on
    // permanent damage, the mirror is consulted directly.
    EXPECT_EQ(out.retries, 0u);
    EXPECT_EQ(out.backoffCyclesSpent, 0u);
    EXPECT_EQ(out.mirrorRestores, 1u);
    EXPECT_TRUE(out.lost.empty());
    EXPECT_TRUE(store.exists(rrtKey(2, 1)));

    // The restore is complete: the next scrub is clean.
    const ProtectedMetaStore::ScrubOutcome again = store.scrub();
    EXPECT_EQ(again.corrected + again.retries + again.mirrorRestores,
              0u);
}

TEST_F(MetaStoreTest, CommonModeHitLosesTheRecord)
{
    ProtectedMetaStore store;
    store.install(rrtKey(3, 0), 0xABCDu);
    store.install(rrtKey(3, 1), 0xEF01u);
    store.applyFault(hit(3, 0, 0b110, 0b1010, /*transient=*/false));

    const ProtectedMetaStore::ScrubOutcome out = store.scrub();
    ASSERT_EQ(out.lost.size(), 1u);
    EXPECT_EQ(out.lost[0].packed(), rrtKey(3, 0).packed());
    EXPECT_FALSE(store.exists(rrtKey(3, 0)));
    EXPECT_TRUE(store.exists(rrtKey(3, 1))); // neighbor untouched
    EXPECT_EQ(store.size(), 1u);
}

TEST_F(MetaStoreTest, FaultOnEmptySlotIsNoRecord)
{
    ProtectedMetaStore store;
    EXPECT_EQ(store.applyFault(hit(0, 0, 1, 0, false)),
              ProtectedMetaStore::ApplyResult::NoRecord);
}

TEST_F(MetaStoreTest, SerializeCarriesPendingCorruption)
{
    ProtectedMetaStore store;
    store.install(rrtKey(0, 0), 0x42u);
    store.install(rrtKey(0, 1), 0x43u);
    store.applyFault(hit(0, 1, 0b11, 0b101, /*transient=*/false));

    ByteSink sink;
    store.serialize(sink);
    ProtectedMetaStore other;
    ByteSource src(sink.bytes());
    other.deserialize(src);
    EXPECT_EQ(src.remaining(), 0u);
    EXPECT_EQ(other.size(), 2u);

    // The restored store must reach the same verdicts: slot 1 was hit
    // common-mode before the checkpoint and is lost at the next scrub.
    const ProtectedMetaStore::ScrubOutcome out = other.scrub();
    ASSERT_EQ(out.lost.size(), 1u);
    EXPECT_EQ(out.lost[0].packed(), rrtKey(0, 1).packed());
    EXPECT_TRUE(other.exists(rrtKey(0, 0)));
}

// ------------------------------------------------------------------
// Datapath end-to-end: the issue's escalation scenarios.
// ------------------------------------------------------------------

SimConfig
tinyConfig()
{
    SimConfig cfg;
    cfg.geom = StackGeometry::tiny();
    cfg.llcBytes = 1 << 14;
    cfg.cores = 2;
    cfg.insnsPerCore = 30'000;
    cfg.seed = 9;
    return cfg;
}

class LadderE2ETest : public ::testing::Test
{
  protected:
    SimConfig cfg_ = tinyConfig();
    AddressMap map_{cfg_.geom};

    LineAddr
    lineAt(u32 ch, u32 b, u32 r, u32 c) const
    {
        return map_.coordToLine({StackId{0}, ChannelId{ch}, BankId{b},
                                 RowId{r}, ColId{c}});
    }
};

TEST_F(LadderE2ETest, SpareExhaustionEscalatesToRetirementAndSteering)
{
    LiveRasOptions opts;
    opts.scrubCycles = 1000;
    // Isolate the exhaustion path from the re-fault strike heuristic.
    opts.degrade.strikesPerBank = 100;
    LiveRasDatapath dp(cfg_, opts);

    // Past the DDS budget: 5 permanent row faults in unit (ch0,b0)
    // overflow the 4 RRT slots (the 5th takes a BRT bank spare), a
    // bank fault in (ch0,b1) takes the second and last BRT slot, and a
    // bank fault in (ch1,b0) finds every spare gone.
    for (u32 r = 1; r <= 5; ++r)
        dp.scheduleFault(rowFault(0, 0, 0, r), 10);
    dp.scheduleFault(bankFault(0, 0, 1), 10);
    dp.scheduleFault(bankFault(0, 1, 0), 10);
    dp.tick(10);
    ASSERT_EQ(dp.activeFaults().size(), 7u);

    dp.tick(1000); // scrub: spare what fits, retire what does not
    const RasCounters &c = dp.counters();
    EXPECT_EQ(c.rowsSpared, 4u);
    EXPECT_EQ(c.banksSpared, 2u);
    EXPECT_GE(c.sparingDenied, 1u);
    EXPECT_EQ(c.banksRetired, 1u);
    EXPECT_EQ(c.channelsDegraded, 0u);
    EXPECT_TRUE(dp.ladder().map().bankRetired(StackId{0}, ChannelId{1},
                                              BankId{0}));
    EXPECT_TRUE(dp.activeFaults().empty()); // spared, absorbed, retired

    // Demand reads into the retired bank are steered, not DUE'd: the
    // simulator keeps running at reduced capacity.
    const DemandOutcome out = dp.onDemandRead(lineAt(1, 0, 8, 2), 1100);
    EXPECT_EQ(out.kind, DemandOutcome::Kind::Clean);
    EXPECT_EQ(c.offlinedReads, 1u);
    EXPECT_EQ(c.due, 0u);
    EXPECT_EQ(c.sdc, 0u);
    EXPECT_EQ(c.divergences, 0u);
    EXPECT_LT(dp.ladder().map().capacityFraction(), 1.0);
}

TEST_F(LadderE2ETest, RefaultedRegionRetiresAfterStrikes)
{
    LiveRasOptions opts;
    opts.scrubCycles = 1000;
    opts.degrade.strikesPerBank = 2;
    LiveRasDatapath dp(cfg_, opts);

    // First fault in the bank is repaired normally (no live entries
    // yet, so no strike is charged).
    dp.scheduleFault(rowFault(0, 0, 0, 3), 10);
    dp.tick(1000);
    EXPECT_EQ(dp.counters().rowsSpared, 1u);
    EXPECT_EQ(dp.counters().banksRetired, 0u);

    // The repaired bank faulting again and again is the "region keeps
    // re-faulting" trigger: each arrival on live remap state counts a
    // strike, and the second strike gives the bank up.
    dp.scheduleFault(rowFault(0, 0, 0, 9), 1100);
    dp.tick(1100);
    EXPECT_EQ(dp.counters().banksRetired, 0u);
    dp.scheduleFault(rowFault(0, 0, 0, 12), 1200);
    dp.tick(1200);
    EXPECT_EQ(dp.counters().banksRetired, 1u);
    EXPECT_TRUE(dp.ladder().map().bankRetired(StackId{0}, ChannelId{0},
                                              BankId{0}));
    // Retirement swallowed the still-active faults of the bank.
    EXPECT_TRUE(dp.activeFaults().empty());
    EXPECT_EQ(dp.counters().divergences, 0u);
}

TEST_F(LadderE2ETest, LostRrtRecordReactivatesAndResparesTheFault)
{
    LiveRasOptions opts;
    opts.scrubCycles = 1000;
    LiveRasDatapath dp(cfg_, opts);

    dp.scheduleFault(rowFault(0, 0, 0, 5), 10);
    dp.tick(1000); // scrub spares the row into RRT slot 0
    ASSERT_EQ(dp.counters().rowsSpared, 1u);
    const LineAddr line = lineAt(0, 0, 5, 1);
    ASSERT_TRUE(dp.lineIsRemapped(line));

    // Common-mode hit on the live RRT entry's record: both copies take
    // multi-bit damage, so scrub retries and the mirror both fail.
    MetaFault mf;
    mf.target = MetaTarget::RrtEntry;
    mf.stack = StackId{0};
    mf.unit = UnitId{0}; // (ch0, b0)
    mf.slot = MetaSlotId{0};
    mf.flipMask = 0b101;
    mf.mirrorFlipMask = 0b11000;
    dp.scheduleMetaFault(mf, 1500);

    dp.tick(2000);
    const RasCounters &c = dp.counters();
    EXPECT_EQ(c.metaFaultsInjected, 1u);
    EXPECT_EQ(c.metaRecordsLost, 1u);
    EXPECT_EQ(c.faultsReactivated, 1u);
    // The reactivated fault is re-spared in the same scrub pass, into
    // a fresh slot (the hit slot is retired as dead SRAM).
    EXPECT_EQ(c.rowsSpared, 2u);
    EXPECT_TRUE(dp.lineIsRemapped(line));
    EXPECT_EQ(dp.onDemandRead(line, 2100).kind,
              DemandOutcome::Kind::Clean);
    EXPECT_EQ(c.divergences, 0u);
    EXPECT_EQ(c.sdc, 0u);
}

TEST_F(LadderE2ETest, SingleBitMetaUpsetIsCorrectedSilently)
{
    LiveRasOptions opts;
    opts.scrubCycles = 1000;
    LiveRasDatapath dp(cfg_, opts);

    // The parity-line cache records exist from construction; flip one
    // bit of one way's primary copy.
    MetaFault mf;
    mf.target = MetaTarget::ParityCacheLine;
    mf.stack = StackId{0};
    mf.slot = MetaSlotId{3};
    mf.flipMask = 1ull << 20;
    dp.scheduleMetaFault(mf, 10);

    dp.tick(1000);
    const RasCounters &c = dp.counters();
    EXPECT_EQ(c.metaCorrected, 1u);
    EXPECT_EQ(c.metaRecordsLost, 0u);
    EXPECT_EQ(c.parityCacheRefetches, 0u);
    EXPECT_EQ(c.faultsReactivated, 0u);
}

TEST_F(LadderE2ETest, TransientMetaUpsetClearsOnRetryWithBackoff)
{
    LiveRasOptions opts;
    opts.scrubCycles = 1000;
    opts.meta.backoffCycles = 32;
    LiveRasDatapath dp(cfg_, opts);

    // Multi-bit transient strike on a parity-cache way: SECDED cannot
    // fix it, but the scrub's backed-off re-read finds it gone.
    MetaFault mf;
    mf.target = MetaTarget::ParityCacheLine;
    mf.stack = StackId{0};
    mf.slot = MetaSlotId{1};
    mf.flipMask = 0b1010;
    mf.transient = true;
    dp.scheduleMetaFault(mf, 10);

    dp.tick(1000);
    const RasCounters &c = dp.counters();
    EXPECT_GE(c.metaScrubRetries, 1u);
    EXPECT_GE(c.metaBackoffCycles, 32u);
    EXPECT_EQ(c.metaRecordsLost, 0u);
    EXPECT_EQ(c.metaMirrorRestored, 0u);
    EXPECT_EQ(c.parityCacheRefetches, 0u);
}

TEST_F(LadderE2ETest, LostParityCacheLineIsRefetchedNotEscalated)
{
    LiveRasOptions opts;
    opts.scrubCycles = 1000;
    LiveRasDatapath dp(cfg_, opts);
    const std::size_t records = dp.metaStore().size();

    MetaFault mf;
    mf.target = MetaTarget::ParityCacheLine;
    mf.stack = StackId{0};
    mf.slot = MetaSlotId{0};
    mf.flipMask = 0b110;
    mf.mirrorFlipMask = 0b1001;
    dp.scheduleMetaFault(mf, 10);

    dp.tick(1000);
    const RasCounters &c = dp.counters();
    EXPECT_EQ(c.metaRecordsLost, 1u);
    EXPECT_EQ(c.parityCacheRefetches, 1u);
    // The clean copy always lives on the parity die: the way is
    // reinstalled, nothing reactivates, no capacity is lost.
    EXPECT_EQ(dp.metaStore().size(), records);
    EXPECT_EQ(c.faultsReactivated, 0u);
    EXPECT_EQ(c.banksRetired, 0u);
}

TEST_F(LadderE2ETest, DeadTsvRegisterReactivatesAbsorbedFault)
{
    LiveRasOptions opts;
    opts.scrubCycles = 1000;
    LiveRasDatapath dp(cfg_, opts);

    // A data-TSV fault is absorbed by TSV-SWAP before it ever corrupts
    // storage; the redirection register now carries live state.
    dp.scheduleFault(dataTsvFault(0, 0, 5), 10);
    dp.tick(10);
    ASSERT_EQ(dp.counters().tsvRepairs, 1u);
    ASSERT_TRUE(dp.activeFaults().empty());

    // Common-mode hit on that register: the swap is undone and the
    // absorbed fault comes back as live corruption. With no spare path
    // left for a channel-wide fault, the ladder gives the channel up.
    MetaFault mf;
    mf.target = MetaTarget::TsvRegister;
    mf.stack = StackId{0};
    mf.channel = ChannelId{0};
    mf.flipMask = 0b11;
    mf.mirrorFlipMask = 0b110;
    dp.scheduleMetaFault(mf, 500);

    dp.tick(1000);
    const RasCounters &c = dp.counters();
    EXPECT_EQ(c.metaRecordsLost, 1u);
    EXPECT_GE(c.faultsReactivated, 1u);
    EXPECT_GE(c.sparingDenied, 1u);
    EXPECT_EQ(c.channelsDegraded, 1u);
    EXPECT_TRUE(dp.ladder().map().channelDegraded(StackId{0},
                                                  ChannelId{0}));
    EXPECT_EQ(c.divergences, 0u);
    EXPECT_EQ(c.sdc, 0u);

    // The register bank is dead SRAM now: a later TSV fault cannot be
    // absorbed there and must surface as an active fault instead.
    dp.scheduleFault(dataTsvFault(0, 0, 9), 1100);
    dp.tick(1100);
    EXPECT_EQ(dp.counters().tsvRepairs, 1u); // unchanged
}

TEST_F(LadderE2ETest, CheckpointRoundTripsLadderAndMetaState)
{
    LiveRasOptions opts;
    opts.scrubCycles = 1000;
    LiveRasDatapath dp(cfg_, opts);
    for (u32 r = 1; r <= 5; ++r)
        dp.scheduleFault(rowFault(0, 0, 0, r), 10);
    dp.scheduleFault(bankFault(0, 1, 1), 10);
    MetaFault mf;
    mf.target = MetaTarget::RrtEntry;
    mf.stack = StackId{0};
    mf.unit = UnitId{0};
    mf.slot = MetaSlotId{1};
    mf.flipMask = 0b11;
    dp.scheduleMetaFault(mf, 1500); // still pending at the checkpoint
    dp.tick(1000);
    dp.onDemandRead(lineAt(0, 0, 1, 0), 1100);

    ByteSink sink;
    dp.saveState(sink);
    LiveRasDatapath other(cfg_, opts);
    ByteSource src(sink.bytes());
    other.loadState(src);
    EXPECT_EQ(src.remaining(), 0u);
    EXPECT_EQ(other.stateFingerprint(), dp.stateFingerprint());

    // Both replicas must now evolve identically: deliver the pending
    // meta fault, scrub, and probe.
    dp.tick(2000);
    other.tick(2000);
    const DemandOutcome a = dp.onDemandRead(lineAt(0, 0, 2, 3), 2100);
    const DemandOutcome b = other.onDemandRead(lineAt(0, 0, 2, 3), 2100);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(other.stateFingerprint(), dp.stateFingerprint());
    EXPECT_EQ(other.counters().metaCorrected,
              dp.counters().metaCorrected);
}

} // namespace
} // namespace citadel
