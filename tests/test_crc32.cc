/**
 * @file
 * Tests for CRC-32: known vectors, incremental interface, error
 * detection properties the paper relies on (Section VI footnote 2).
 */

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/rng.h"
#include "ecc/crc32.h"

namespace citadel {
namespace {

std::vector<u8>
bytes(const char *s)
{
    return std::vector<u8>(s, s + std::string(s).size());
}

TEST(Crc32, KnownVectors)
{
    // Standard IEEE 802.3 check values.
    const auto check = bytes("123456789");
    EXPECT_EQ(Crc32::compute(check), 0xCBF43926u);

    const std::vector<u8> empty;
    EXPECT_EQ(Crc32::compute(empty), 0x00000000u);

    const auto a = bytes("a");
    EXPECT_EQ(Crc32::compute(a), 0xE8B7BE43u);
}

TEST(Crc32, MatchesBitwiseReference)
{
    Rng rng(1);
    for (u32 len : {1u, 7u, 63u, 64u, 65u, 512u}) {
        std::vector<u8> data(len);
        for (auto &b : data)
            b = static_cast<u8>(rng.next());
        EXPECT_EQ(Crc32::compute(data), Crc32::referenceCompute(data));
    }
}

TEST(Crc32, SliceBy8MatchesReferenceOnRandomLengths)
{
    // The production path is slicing-by-8; the bit-at-a-time reference
    // is ground truth. Random lengths straddle every chunk/tail split.
    Rng rng(7);
    for (int t = 0; t < 300; ++t) {
        const u32 len = static_cast<u32>(rng.below(300));
        std::vector<u8> data(len);
        for (auto &b : data)
            b = static_cast<u8>(rng.next());
        ASSERT_EQ(Crc32::compute(data), Crc32::referenceCompute(data))
            << "length " << len;
    }
}

TEST(Crc32, SliceBy8MatchesReferenceOnUnalignedSpans)
{
    // Sub-spans at every start offset within a word: the 8-byte inner
    // loop must be correct regardless of pointer alignment.
    Rng rng(8);
    std::vector<u8> buf(256);
    for (auto &b : buf)
        b = static_cast<u8>(rng.next());
    for (u32 off = 0; off < 16; ++off) {
        for (u32 len : {0u, 1u, 5u, 8u, 9u, 40u, 100u}) {
            const std::span<const u8> sub(buf.data() + off, len);
            const std::vector<u8> copy(sub.begin(), sub.end());
            ASSERT_EQ(Crc32::finish(Crc32::update(Crc32::begin(), sub)),
                      Crc32::referenceCompute(copy))
                << "offset " << off << " length " << len;
        }
    }
}

TEST(Crc32, BytewiseBaselineMatchesSliceBy8)
{
    // The byte-at-a-time kernel kept as the perf-trajectory baseline
    // must stay functionally identical to the production path.
    Rng rng(9);
    for (u32 len : {0u, 1u, 7u, 8u, 9u, 64u, 200u, 1000u}) {
        std::vector<u8> data(len);
        for (auto &b : data)
            b = static_cast<u8>(rng.next());
        u32 a = Crc32::begin();
        u32 b = Crc32::begin();
        a = Crc32::update(a, data);
        b = Crc32::updateBytewise(b, data);
        ASSERT_EQ(a, b) << "length " << len;
        ASSERT_EQ(Crc32::finish(a), Crc32::referenceCompute(data));
    }
}

TEST(Crc32, WordUpdateMatchesByteUpdate)
{
    // update(state, u64) must equal feeding the same 8 bytes
    // little-endian — the line-CRC path depends on this equivalence.
    Rng rng(10);
    for (int t = 0; t < 50; ++t) {
        const u64 word = rng.next();
        std::array<u8, 8> raw{};
        for (u32 i = 0; i < 8; ++i)
            raw[i] = static_cast<u8>(word >> (8 * i));
        EXPECT_EQ(Crc32::update(Crc32::begin(), word),
                  Crc32::update(Crc32::begin(),
                                std::span<const u8>(raw)));
    }
}

TEST(Crc32, IncrementalEqualsOneShot)
{
    Rng rng(2);
    std::vector<u8> data(200);
    for (auto &b : data)
        b = static_cast<u8>(rng.next());

    u32 s = Crc32::begin();
    s = Crc32::update(s, std::span<const u8>(data.data(), 77));
    s = Crc32::update(s, std::span<const u8>(data.data() + 77, 123));
    EXPECT_EQ(Crc32::finish(s), Crc32::compute(data));
}

TEST(Crc32, DetectsEverySingleBitFlip)
{
    Rng rng(3);
    std::vector<u8> line(64);
    for (auto &b : line)
        b = static_cast<u8>(rng.next());
    const u32 good = Crc32::compute(line);
    for (u32 bit = 0; bit < 512; ++bit) {
        line[bit / 8] ^= static_cast<u8>(1 << (bit % 8));
        EXPECT_NE(Crc32::compute(line), good) << "missed bit " << bit;
        line[bit / 8] ^= static_cast<u8>(1 << (bit % 8));
    }
}

TEST(Crc32, DetectsBurstErrors)
{
    // CRC-32 detects all burst errors up to 32 bits.
    Rng rng(4);
    std::vector<u8> line(64);
    for (auto &b : line)
        b = static_cast<u8>(rng.next());
    const u32 good = Crc32::compute(line);
    for (u32 start = 0; start < 480; start += 37) {
        auto corrupted = line;
        for (u32 b = start; b < start + 32; ++b)
            if (rng.chance(0.5))
                corrupted[b / 8] ^= static_cast<u8>(1 << (b % 8));
        if (corrupted == line)
            continue;
        EXPECT_NE(Crc32::compute(corrupted), good);
    }
}

TEST(Crc32, LineCrcMixesAddress)
{
    // Same payload at two addresses must yield different CRCs: this is
    // how Citadel detects address-TSV faults returning the wrong row.
    Rng rng(5);
    std::vector<u8> payload(64);
    for (auto &b : payload)
        b = static_cast<u8>(rng.next());
    EXPECT_NE(Crc32::lineCrc(0x1000, payload),
              Crc32::lineCrc(0x2000, payload));
    EXPECT_EQ(Crc32::lineCrc(0x1000, payload),
              Crc32::lineCrc(0x1000, payload));
}

TEST(Crc32, RandomCorruptionDetectionRate)
{
    // Aliasing probability is 2^-32; over a few thousand random
    // corruptions we must see zero misses.
    Rng rng(6);
    std::vector<u8> line(64);
    for (auto &b : line)
        b = static_cast<u8>(rng.next());
    const u32 good = Crc32::compute(line);
    for (int t = 0; t < 5000; ++t) {
        auto corrupted = line;
        const int flips = 1 + static_cast<int>(rng.below(16));
        for (int i = 0; i < flips; ++i) {
            const u32 bit = static_cast<u32>(rng.below(512));
            corrupted[bit / 8] ^= static_cast<u8>(1 << (bit % 8));
        }
        if (corrupted == line)
            continue;
        ASSERT_NE(Crc32::compute(corrupted), good);
    }
}

} // namespace
} // namespace citadel
