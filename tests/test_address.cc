/**
 * @file
 * Tests for the address map: round-trip correctness, interleaving
 * policy, and striping fan-out.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "stack/address.h"

namespace citadel {
namespace {

class AddressTest : public ::testing::Test
{
  protected:
    StackGeometry geom_;
    AddressMap map_{geom_};
};

TEST_F(AddressTest, RoundTripSamples)
{
    const u64 total = geom_.totalLines();
    for (u64 line : std::vector<u64>{0, 1, 63, 4096, total / 2, total - 1}) {
        const LineCoord c = map_.lineToCoord(line);
        EXPECT_EQ(map_.coordToLine(c), line) << "line " << line;
        EXPECT_LT(c.stack, geom_.stacks);
        EXPECT_LT(c.channel, geom_.channelsPerStack);
        EXPECT_LT(c.bank, geom_.banksPerChannel);
        EXPECT_LT(c.row, geom_.rowsPerBank);
        EXPECT_LT(c.col, geom_.linesPerRow());
    }
}

TEST_F(AddressTest, ConsecutiveLinesFormShortRowBursts)
{
    // Hybrid interleaving: a 4-line (256B) burst stays in one row of
    // one bank, then the channel rotates.
    for (u64 i = 0; i < 4; ++i) {
        const LineCoord c = map_.lineToCoord(i);
        EXPECT_EQ(c.col, i);
        EXPECT_EQ(c.channel, 0u);
        EXPECT_EQ(c.bank, 0u);
        EXPECT_EQ(c.row, 0u);
    }
    EXPECT_EQ(map_.lineToCoord(4).channel, 1u);
    EXPECT_EQ(map_.lineToCoord(4).col, 0u);
    EXPECT_EQ(map_.lineToCoord(32).bank, 1u);
    EXPECT_EQ(map_.lineToCoord(256).col, 4u); // col_hi advances
}

TEST_F(AddressTest, LinesFourApartShareParityGroup)
{
    // Data lines 4 apart (same col_lo, next channel) share
    // (stack, row, col) -- i.e., one D1 parity line -- giving
    // streaming writebacks their parity-cache locality (Section VI-C).
    const LineCoord a = map_.lineToCoord(400);
    const LineCoord b = map_.lineToCoord(400 + 4);
    EXPECT_EQ(a.row, b.row);
    EXPECT_EQ(a.col, b.col);
    EXPECT_EQ(a.stack, b.stack);
    EXPECT_NE(std::make_pair(a.channel, a.bank),
              std::make_pair(b.channel, b.bank));
    // A full 256-line block shares only 4 distinct parity lines.
    std::set<std::pair<u32, u32>> parity;
    for (u64 i = 0; i < 256; ++i) {
        const LineCoord c = map_.lineToCoord(i);
        parity.insert({c.row, c.col});
    }
    EXPECT_EQ(parity.size(), 4u);
}

TEST_F(AddressTest, OutOfRangeDies)
{
    EXPECT_DEATH(map_.lineToCoord(geom_.totalLines()), "out of range");
}

TEST_F(AddressTest, FanoutPerMode)
{
    EXPECT_EQ(map_.fanout(StripingMode::SameBank), 1u);
    EXPECT_EQ(map_.fanout(StripingMode::AcrossBanks), 8u);
    EXPECT_EQ(map_.fanout(StripingMode::AcrossChannels), 8u);
}

TEST_F(AddressTest, SameBankSubRequestIsIdentity)
{
    const LineCoord c = map_.lineToCoord(12345);
    const auto subs = map_.subRequests(c, StripingMode::SameBank);
    ASSERT_EQ(subs.size(), 1u);
    EXPECT_EQ(subs[0], c);
}

TEST_F(AddressTest, AcrossBanksCoversAllBanksOfOneChannel)
{
    const LineCoord c = map_.lineToCoord(999);
    const auto subs = map_.subRequests(c, StripingMode::AcrossBanks);
    ASSERT_EQ(subs.size(), geom_.banksPerChannel);
    std::set<u32> banks;
    for (const auto &s : subs) {
        EXPECT_EQ(s.channel, c.channel);
        EXPECT_EQ(s.stack, c.stack);
        EXPECT_EQ(s.row, c.row);
        EXPECT_EQ(s.col, c.col);
        banks.insert(s.bank);
    }
    EXPECT_EQ(banks.size(), geom_.banksPerChannel);
}

TEST_F(AddressTest, AcrossChannelsCoversAllChannelsOfOneStack)
{
    const LineCoord c = map_.lineToCoord(31337);
    const auto subs = map_.subRequests(c, StripingMode::AcrossChannels);
    ASSERT_EQ(subs.size(), geom_.channelsPerStack);
    std::set<u32> channels;
    for (const auto &s : subs) {
        EXPECT_EQ(s.bank, c.bank);
        EXPECT_EQ(s.stack, c.stack);
        channels.insert(s.channel);
    }
    EXPECT_EQ(channels.size(), geom_.channelsPerStack);
}

TEST_F(AddressTest, ExhaustiveRoundTripOnTinyGeometry)
{
    StackGeometry tiny = StackGeometry::tiny();
    AddressMap map(tiny);
    for (u64 line = 0; line < tiny.totalLines(); ++line)
        EXPECT_EQ(map.coordToLine(map.lineToCoord(line)), line);
}

TEST(StripingModeName, AllNamed)
{
    EXPECT_STREQ(stripingModeName(StripingMode::SameBank), "Same-Bank");
    EXPECT_STREQ(stripingModeName(StripingMode::AcrossBanks),
                 "Across-Banks");
    EXPECT_STREQ(stripingModeName(StripingMode::AcrossChannels),
                 "Across-Channels");
}

} // namespace
} // namespace citadel
