/**
 * @file
 * Tests for the address map: round-trip correctness, interleaving
 * policy, and striping fan-out.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "stack/address.h"

namespace citadel {
namespace {

class AddressTest : public ::testing::Test
{
  protected:
    StackGeometry geom_;
    AddressMap map_{geom_};
};

TEST_F(AddressTest, RoundTripSamples)
{
    const u64 total = geom_.totalLines();
    for (u64 raw : std::vector<u64>{0, 1, 63, 4096, total / 2, total - 1}) {
        const LineAddr line{raw};
        const LineCoord c = map_.lineToCoord(line);
        EXPECT_EQ(map_.coordToLine(c), line) << "line " << line;
        EXPECT_LT(c.stack.value(), geom_.stacks);
        EXPECT_LT(c.channel.value(), geom_.channelsPerStack);
        EXPECT_LT(c.bank.value(), geom_.banksPerChannel);
        EXPECT_LT(c.row.value(), geom_.rowsPerBank);
        EXPECT_LT(c.col.value(), geom_.linesPerRow());
    }
}

TEST_F(AddressTest, ConsecutiveLinesFormShortRowBursts)
{
    // Hybrid interleaving: a 4-line (256B) burst stays in one row of
    // one bank, then the channel rotates.
    for (u64 i = 0; i < 4; ++i) {
        const LineCoord c = map_.lineToCoord(LineAddr{i});
        EXPECT_EQ(c.col, ColId{static_cast<u32>(i)});
        EXPECT_EQ(c.channel, ChannelId{0});
        EXPECT_EQ(c.bank, BankId{0});
        EXPECT_EQ(c.row, RowId{0});
    }
    EXPECT_EQ(map_.lineToCoord(LineAddr{4}).channel, ChannelId{1});
    EXPECT_EQ(map_.lineToCoord(LineAddr{4}).col, ColId{0});
    EXPECT_EQ(map_.lineToCoord(LineAddr{32}).bank, BankId{1});
    // col_hi advances
    EXPECT_EQ(map_.lineToCoord(LineAddr{256}).col, ColId{4});
}

TEST_F(AddressTest, LinesFourApartShareParityGroup)
{
    // Data lines 4 apart (same col_lo, next channel) share
    // (stack, row, col) -- i.e., one D1 parity line -- giving
    // streaming writebacks their parity-cache locality (Section VI-C).
    const LineCoord a = map_.lineToCoord(LineAddr{400});
    const LineCoord b = map_.lineToCoord(LineAddr{400 + 4});
    EXPECT_EQ(a.row, b.row);
    EXPECT_EQ(a.col, b.col);
    EXPECT_EQ(a.stack, b.stack);
    EXPECT_NE(std::make_pair(a.channel, a.bank),
              std::make_pair(b.channel, b.bank));
    // A full 256-line block shares only 4 distinct parity lines.
    std::set<std::pair<RowId, ColId>> parity;
    for (u64 i = 0; i < 256; ++i) {
        const LineCoord c = map_.lineToCoord(LineAddr{i});
        parity.insert({c.row, c.col});
    }
    EXPECT_EQ(parity.size(), 4u);
}

TEST_F(AddressTest, OutOfRangeDies)
{
    EXPECT_DEATH(map_.lineToCoord(LineAddr{geom_.totalLines()}),
                 "out of range");
}

TEST_F(AddressTest, FanoutPerMode)
{
    EXPECT_EQ(map_.fanout(StripingMode::SameBank), 1u);
    EXPECT_EQ(map_.fanout(StripingMode::AcrossBanks), 8u);
    EXPECT_EQ(map_.fanout(StripingMode::AcrossChannels), 8u);
}

TEST_F(AddressTest, SameBankSubRequestIsIdentity)
{
    const LineCoord c = map_.lineToCoord(LineAddr{12345});
    const auto subs = map_.subRequests(c, StripingMode::SameBank);
    ASSERT_EQ(subs.size(), 1u);
    EXPECT_EQ(subs[0], c);
}

TEST_F(AddressTest, AcrossBanksCoversAllBanksOfOneChannel)
{
    const LineCoord c = map_.lineToCoord(LineAddr{999});
    const auto subs = map_.subRequests(c, StripingMode::AcrossBanks);
    ASSERT_EQ(subs.size(), geom_.banksPerChannel);
    std::set<BankId> banks;
    for (const auto &s : subs) {
        EXPECT_EQ(s.channel, c.channel);
        EXPECT_EQ(s.stack, c.stack);
        EXPECT_EQ(s.row, c.row);
        EXPECT_EQ(s.col, c.col);
        banks.insert(s.bank);
    }
    EXPECT_EQ(banks.size(), geom_.banksPerChannel);
}

TEST_F(AddressTest, AcrossChannelsCoversAllChannelsOfOneStack)
{
    const LineCoord c = map_.lineToCoord(LineAddr{31337});
    const auto subs = map_.subRequests(c, StripingMode::AcrossChannels);
    ASSERT_EQ(subs.size(), geom_.channelsPerStack);
    std::set<ChannelId> channels;
    for (const auto &s : subs) {
        EXPECT_EQ(s.bank, c.bank);
        EXPECT_EQ(s.stack, c.stack);
        channels.insert(s.channel);
    }
    EXPECT_EQ(channels.size(), geom_.channelsPerStack);
}

TEST_F(AddressTest, ExhaustiveRoundTripOnTinyGeometry)
{
    StackGeometry tiny = StackGeometry::tiny();
    AddressMap map(tiny);
    for (u64 raw = 0; raw < tiny.totalLines(); ++raw) {
        const LineAddr line{raw};
        EXPECT_EQ(map.coordToLine(map.lineToCoord(line)), line);
    }
}

TEST(StripingModeName, AllNamed)
{
    EXPECT_STREQ(stripingModeName(StripingMode::SameBank), "Same-Bank");
    EXPECT_STREQ(stripingModeName(StripingMode::AcrossBanks),
                 "Across-Banks");
    EXPECT_STREQ(stripingModeName(StripingMode::AcrossChannels),
                 "Across-Channels");
}

} // namespace
} // namespace citadel
