/**
 * @file
 * Tests for the live RAS datapath: demand-time correction against
 * bit-true storage, graceful degradation (sparing, poisoning) and the
 * end-to-end SystemSim integration, including the acceptance scenarios
 * of the issue (row fault corrected mid-run; forced uncorrectable
 * pattern reported as DUE while the simulation completes).
 */

#include <gtest/gtest.h>

#include "citadel/citadel.h"
#include "fault_builders.h"
#include "ras/live_datapath.h"
#include "sim/system_sim.h"

namespace citadel {
namespace {

using namespace testing_helpers;

SimConfig
tinyConfig()
{
    SimConfig cfg;
    cfg.geom = StackGeometry::tiny();
    cfg.llcBytes = 1 << 14; // 256 lines vs 1024 DRAM lines: real misses
    cfg.cores = 2;
    cfg.insnsPerCore = 30'000;
    cfg.seed = 9;
    return cfg;
}

class LiveRasTest : public ::testing::Test
{
  protected:
    SimConfig cfg_ = tinyConfig();
    AddressMap map_{cfg_.geom};

    LineAddr
    lineAt(u32 ch, u32 b, u32 r, u32 c) const
    {
        return map_.coordToLine({StackId{0}, ChannelId{ch}, BankId{b},
                                 RowId{r}, ColId{c}});
    }
};

TEST_F(LiveRasTest, CleanReadsStayClean)
{
    LiveRasDatapath dp(cfg_);
    dp.tick(0);
    const DemandOutcome out = dp.onDemandRead(lineAt(0, 0, 3, 1), 1);
    EXPECT_EQ(out.kind, DemandOutcome::Kind::Clean);
    EXPECT_TRUE(out.extraReads.empty());
    EXPECT_EQ(dp.counters().demandReads, 1u);
    EXPECT_EQ(dp.counters().crcDetects, 0u);
}

TEST_F(LiveRasTest, RowFaultIsCorrectedThenSpared)
{
    LiveRasDatapath dp(cfg_);
    dp.scheduleFault(rowFault(0, 0, 0, 5), 10);

    dp.tick(9);
    EXPECT_TRUE(dp.activeFaults().empty()); // not materialized yet
    dp.tick(10);
    ASSERT_EQ(dp.activeFaults().size(), 1u);
    EXPECT_TRUE(dp.engine(StackId{0}).lineCorruptAt(DieId{0}, BankId{0}, RowId{5}, ColId{0}));

    const LineAddr line = lineAt(0, 0, 5, 2);
    const DemandOutcome out = dp.onDemandRead(line, 11);
    EXPECT_EQ(out.kind, DemandOutcome::Kind::Corrected);
    // Retry plus the D1 group (other 3 data units + the parity line).
    EXPECT_GE(out.extraReads.size(), 2u);
    EXPECT_EQ(out.extraReads.front(), line);

    const RasCounters &c = dp.counters();
    EXPECT_EQ(c.crcDetects, 1u);
    EXPECT_EQ(c.retries, 1u);
    EXPECT_EQ(c.ce, 1u);
    EXPECT_EQ(c.sdc, 0u);
    EXPECT_GT(c.parityGroupReads, 0u);
    EXPECT_EQ(c.rowsSpared, 1u); // permanent fault retired on demand
    EXPECT_EQ(c.divergences, 0u);
    EXPECT_TRUE(dp.activeFaults().empty());

    // Subsequent accesses to the row are served from spare storage.
    EXPECT_TRUE(dp.lineIsRemapped(line));
    const DemandOutcome again = dp.onDemandRead(line, 12);
    EXPECT_EQ(again.kind, DemandOutcome::Kind::Clean);
    EXPECT_EQ(dp.counters().remappedReads, 1u);

    // A CE event with a dimension and a group-read cost was logged.
    bool saw_ce = false;
    for (const RasEvent &ev : dp.log().events())
        if (ev.type == RasEventType::CorrectableError) {
            saw_ce = true;
            EXPECT_EQ(ev.line, line);
            EXPECT_EQ(ev.dimUsed, 1u);
            EXPECT_GT(ev.groupReads, 0u);
        }
    EXPECT_TRUE(saw_ce);
}

TEST_F(LiveRasTest, TransientRecorrectsUntilScrub)
{
    LiveRasOptions opts;
    opts.scrubCycles = 1000;
    LiveRasDatapath dp(cfg_, opts);

    Fault f = bitFault(0, 1, 1, 7, 3, 100);
    f.transient = true;
    dp.scheduleFault(f, 0);
    dp.tick(0);

    const LineAddr line = lineAt(1, 1, 7, 3);
    // A transient is not spared; until the scrub rewrites the line it
    // re-corrupts and must be re-corrected on every access.
    EXPECT_EQ(dp.onDemandRead(line, 1).kind,
              DemandOutcome::Kind::Corrected);
    EXPECT_EQ(dp.onDemandRead(line, 2).kind,
              DemandOutcome::Kind::Corrected);
    EXPECT_EQ(dp.counters().ce, 2u);
    EXPECT_EQ(dp.counters().rowsSpared, 0u);
    EXPECT_FALSE(dp.lineIsRemapped(line));

    dp.tick(1000); // scrub boundary: transient cells rewritten
    EXPECT_TRUE(dp.activeFaults().empty());
    EXPECT_EQ(dp.onDemandRead(line, 1001).kind,
              DemandOutcome::Kind::Clean);
    EXPECT_EQ(dp.counters().ce, 2u);
}

TEST_F(LiveRasTest, FaultyParityForcesHigherDimension)
{
    LiveRasDatapath dp(cfg_);
    dp.scheduleFault(rowFault(0, 0, 0, 5), 0);
    dp.scheduleFault(parityRowFault(cfg_.geom, 0, 5), 0);
    dp.tick(0);

    // The D1 parity line of row 5 is itself corrupt, so the data row
    // must reconstruct via D2; the verdict must still agree with the
    // analytic model (no divergence).
    const DemandOutcome out = dp.onDemandRead(lineAt(0, 0, 5, 1), 1);
    EXPECT_EQ(out.kind, DemandOutcome::Kind::Corrected);
    EXPECT_EQ(dp.counters().sdc, 0u);
    EXPECT_EQ(dp.counters().divergences, 0u);

    bool saw_d2plus = false;
    for (const RasEvent &ev : dp.log().events())
        if (ev.type == RasEventType::CorrectableError && ev.dimUsed >= 2)
            saw_d2plus = true;
    EXPECT_TRUE(saw_d2plus);
}

TEST_F(LiveRasTest, TripleBankPatternReportsDueAndContinues)
{
    LiveRasDatapath dp(cfg_);
    dp.scheduleFault(bankFault(0, 0, 0), 0);
    dp.scheduleFault(bankFault(0, 0, 1), 0);
    dp.scheduleFault(bankFault(0, 1, 0), 0);
    dp.tick(0);

    const LineAddr line = lineAt(0, 0, 9, 1);
    const DemandOutcome out = dp.onDemandRead(line, 1);
    EXPECT_EQ(out.kind, DemandOutcome::Kind::Uncorrectable);
    // The retry still happened; no parity group could be charged.
    EXPECT_EQ(out.extraReads.size(), 1u);

    const RasCounters &c = dp.counters();
    EXPECT_EQ(c.due, 1u);
    EXPECT_EQ(c.dueReads, 1u);
    EXPECT_EQ(c.ce, 0u);
    EXPECT_EQ(c.sdc, 0u);
    EXPECT_EQ(c.divergences, 0u);

    // The DUE offlined its page (the default ladder rung): the same
    // line again is steered to a healthy stand-in and reads clean,
    // and the DUE is reported (machine-check style) only once.
    EXPECT_EQ(c.pagesOfflined, 1u);
    EXPECT_EQ(dp.onDemandRead(line, 2).kind, DemandOutcome::Kind::Clean);
    EXPECT_EQ(dp.counters().due, 1u);
    EXPECT_EQ(dp.counters().dueReads, 1u);
    EXPECT_EQ(dp.counters().offlinedReads, 1u);

    // And the datapath still serves unaffected banks normally.
    EXPECT_EQ(dp.onDemandRead(lineAt(1, 1, 9, 1), 3).kind,
              DemandOutcome::Kind::Clean);
}

TEST_F(LiveRasTest, PoisonedLineRereadsWithoutOfflining)
{
    // With page offlining disabled the legacy semantics hold: every
    // re-read of a poisoned line is another poisoned read.
    LiveRasOptions opts;
    opts.degrade.offlinePagesOnDue = false;
    LiveRasDatapath dp(cfg_, opts);
    dp.scheduleFault(bankFault(0, 0, 0), 0);
    dp.scheduleFault(bankFault(0, 0, 1), 0);
    dp.scheduleFault(bankFault(0, 1, 0), 0);
    dp.tick(0);

    const LineAddr line = lineAt(0, 0, 9, 1);
    EXPECT_EQ(dp.onDemandRead(line, 1).kind,
              DemandOutcome::Kind::Uncorrectable);
    EXPECT_EQ(dp.onDemandRead(line, 2).kind,
              DemandOutcome::Kind::Uncorrectable);
    EXPECT_EQ(dp.counters().due, 1u);
    EXPECT_EQ(dp.counters().dueReads, 2u);
    EXPECT_EQ(dp.counters().pagesOfflined, 0u);
    EXPECT_EQ(dp.counters().offlinedReads, 0u);
}

TEST_F(LiveRasTest, TsvFaultAbsorbedBySwap)
{
    LiveRasDatapath dp(cfg_);
    dp.scheduleFault(dataTsvFault(0, 0, 17), 0);
    dp.tick(0);

    EXPECT_TRUE(dp.activeFaults().empty());
    EXPECT_EQ(dp.counters().tsvRepairs, 1u);
    EXPECT_EQ(dp.counters().faultsAbsorbed, 1u);
    EXPECT_EQ(dp.onDemandRead(lineAt(0, 0, 0, 0), 1).kind,
              DemandOutcome::Kind::Clean);
}

TEST_F(LiveRasTest, TsvBudgetExhaustionLeavesFaultLive)
{
    LiveRasOptions opts;
    opts.scheme.standbyTsvsPerChannel = 1;
    LiveRasDatapath dp(cfg_, opts);
    dp.scheduleFault(dataTsvFault(0, 0, 3), 0);
    dp.scheduleFault(dataTsvFault(0, 0, 200), 0);
    dp.tick(0);

    EXPECT_EQ(dp.counters().tsvRepairs, 1u);
    EXPECT_EQ(dp.activeFaults().size(), 1u);
}

TEST_F(LiveRasTest, RrtExhaustionEscalatesToBankSparing)
{
    LiveRasDatapath dp(cfg_);
    // Five permanent row faults in one bank vs an RRT of four entries.
    for (u32 r = 0; r < 5; ++r)
        dp.scheduleFault(rowFault(0, 1, 1, r), 0);
    dp.tick(0);

    for (u32 r = 0; r < 5; ++r)
        EXPECT_EQ(dp.onDemandRead(lineAt(1, 1, r, 0), r + 1).kind,
                  DemandOutcome::Kind::Corrected);

    const RasCounters &c = dp.counters();
    EXPECT_EQ(c.rowsSpared, 4u);
    EXPECT_EQ(c.banksSpared, 1u); // fifth row escalated (VII-C.3)
    EXPECT_TRUE(dp.activeFaults().empty());
    EXPECT_TRUE(dp.lineIsRemapped(lineAt(1, 1, 60, 0))); // whole bank
}

TEST_F(LiveRasTest, SchemeEventSinkObservesDecisions)
{
    // The satellite API: Monte Carlo schemes report the same decision
    // kinds the live datapath logs.
    SystemConfig sys;
    sys.geom = cfg_.geom;
    sys.subArrayRows = 32;

    SchemePtr scheme = makeCitadel();
    std::vector<SchemeEvent> seen;
    scheme->setEventSink(
        [&](const SchemeEvent &ev) { seen.push_back(ev); });
    scheme->reset(sys);

    EXPECT_TRUE(scheme->absorb(dataTsvFault(0, 0, 5)));
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0].kind, SchemeEvent::Kind::TsvRepaired);

    std::vector<Fault> active = {rowFault(0, 0, 0, 3)};
    scheme->onScrub(active);
    EXPECT_TRUE(active.empty());
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[1].kind, SchemeEvent::Kind::RowSpared);
    EXPECT_EQ(seen[1].fault.cls, FaultClass::Row);
}

TEST_F(LiveRasTest, EventLogIsBoundedCountersExact)
{
    LiveRasOptions opts;
    opts.maxEvents = 2;
    LiveRasDatapath dp(cfg_, opts);
    Fault f = bitFault(0, 0, 0, 1, 1, 5);
    f.transient = true;
    dp.scheduleFault(f, 0);
    dp.tick(0);
    const LineAddr line = lineAt(0, 0, 1, 1);
    for (u64 i = 0; i < 6; ++i)
        dp.onDemandRead(line, i + 1);

    EXPECT_EQ(dp.counters().ce, 6u);       // exact
    EXPECT_LE(dp.log().events().size(), 2u); // bounded
    EXPECT_GT(dp.log().dropped(), 0u);
}

TEST_F(LiveRasTest, RefusesFullSizeGeometry)
{
    SimConfig big;
    big.geom = StackGeometry::hbm();
    EXPECT_DEATH({ LiveRasDatapath dp(big); }, "model bytes");
}

TEST_F(LiveRasTest, RejectsWildStackFault)
{
    LiveRasDatapath dp(cfg_);
    Fault f = rowFault(0, 0, 0, 1);
    f.stack = DimSpec::wild();
    EXPECT_DEATH(dp.scheduleFault(f, 0), "stack");
}

// ---------------------------------------------------------------------
// End-to-end: the datapath attached to the running timing simulator.
// ---------------------------------------------------------------------

TEST(LiveRasEndToEnd, BankFaultCorrectedMidRun)
{
    SimConfig cfg = tinyConfig();
    cfg.ras = RasTraffic::ThreeDPCached;

    LiveRasDatapath dp(cfg);
    // A quarter of the address space fails shortly after the run
    // starts; a single-bank fault peels via D1.
    dp.scheduleFault(bankFault(0, 0, 0), 500);

    SystemSim sim(cfg, findBenchmark("mcf"));
    sim.attachRas(&dp);
    const SimResult res = sim.run();

    // The simulation retires everything despite the fault.
    EXPECT_EQ(res.insnsRetired,
              static_cast<u64>(cfg.cores) * cfg.insnsPerCore);

    const RasCounters &c = dp.counters();
    EXPECT_GT(c.demandReads, 0u);
    EXPECT_GE(c.ce, 1u);          // at least one demand hit the bank
    EXPECT_EQ(c.sdc, 0u);         // every correction is bit-identical
    EXPECT_EQ(c.due, 0u);
    EXPECT_EQ(c.divergences, 0u);
    EXPECT_GT(c.parityGroupReads, 0u);
    EXPECT_EQ(c.banksSpared, 1u); // degraded gracefully via the BRT
    EXPECT_GT(c.remappedReads, 0u);

    // Correction traffic is charged to the memory system.
    EXPECT_GT(res.mem.rasReads, 0u);
}

TEST(LiveRasEndToEnd, UncorrectablePatternSurvivesToCompletion)
{
    SimConfig cfg = tinyConfig();
    cfg.insnsPerCore = 15'000;

    LiveRasDatapath dp(cfg);
    dp.scheduleFault(bankFault(0, 0, 0), 0);
    dp.scheduleFault(bankFault(0, 0, 1), 0);
    dp.scheduleFault(bankFault(0, 1, 0), 0);

    SystemSim sim(cfg, findBenchmark("mcf"));
    sim.attachRas(&dp);
    const SimResult res = sim.run();

    // No abort, no hang: the run completes with DUEs reported.
    EXPECT_EQ(res.insnsRetired,
              static_cast<u64>(cfg.cores) * cfg.insnsPerCore);
    EXPECT_GT(dp.counters().due, 0u);
    EXPECT_GT(dp.counters().dueReads, 0u);
    EXPECT_EQ(dp.counters().sdc, 0u);
    EXPECT_EQ(dp.counters().divergences, 0u);
}

TEST(LiveRasEndToEnd, CorrectionLatencyStallsTheRun)
{
    SimConfig cfg = tinyConfig();
    cfg.ras = RasTraffic::ThreeDPCached;

    SystemSim clean(cfg, findBenchmark("mcf"));
    const SimResult base = clean.run();

    LiveRasOptions opts;
    opts.scheme.enableDds = false; // no sparing: every hit re-corrects
    LiveRasDatapath dp2(cfg, opts);
    dp2.scheduleFault(bankFault(0, 0, 0), 0);

    SystemSim faulty(cfg, findBenchmark("mcf"));
    faulty.attachRas(&dp2);
    const SimResult slow = faulty.run();

    // Re-correcting a quarter of the space on every access must cost
    // cycles: the replay-token chain holds cores until the parity-group
    // reads complete.
    EXPECT_GT(dp2.counters().ce, 10u);
    EXPECT_GT(slow.cycles, base.cycles);
    EXPECT_GT(slow.mem.rasReads, base.mem.rasReads);
}

} // namespace
} // namespace citadel
