/**
 * @file
 * Tests for the fault injector: arrival statistics match the FIT
 * rates, fault ranges are well-formed per class, TSV faults follow the
 * severity model.
 */

#include <gtest/gtest.h>

#include <map>

#include "faults/injector.h"

namespace citadel {
namespace {

class InjectorTest : public ::testing::Test
{
  protected:
    SystemConfig cfg_;

    void
    SetUp() override
    {
        cfg_.geom = StackGeometry{};
    }
};

TEST_F(InjectorTest, ArrivalCountMatchesExpectation)
{
    cfg_.tsvDeviceFit = 0.0;
    FaultInjector inj(cfg_);
    Rng rng(1);
    double total = 0.0;
    const int trials = 4000;
    for (int t = 0; t < trials; ++t)
        total += static_cast<double>(inj.sampleLifetime(rng).size());

    // Expected: per-die FIT over 18 dies for 7 years.
    const double per_die =
        fitToPerHour(cfg_.rates.totalFit()) * cfg_.lifetimeHours;
    const double expected =
        per_die * cfg_.geom.stacks * (cfg_.geom.channelsPerStack + 1);
    EXPECT_NEAR(total / trials, expected, 0.05 * expected + 0.01);
}

TEST_F(InjectorTest, EventsAreTimeSorted)
{
    cfg_.tsvDeviceFit = 5000.0; // force plenty of events
    FaultInjector inj(cfg_);
    Rng rng(2);
    for (int t = 0; t < 200; ++t) {
        const auto ev = inj.sampleLifetime(rng);
        for (std::size_t i = 1; i < ev.size(); ++i)
            ASSERT_LE(ev[i - 1].timeHours, ev[i].timeHours);
        for (const Fault &f : ev) {
            ASSERT_GE(f.timeHours, 0.0);
            ASSERT_LE(f.timeHours, cfg_.lifetimeHours);
        }
    }
}

TEST_F(InjectorTest, FaultShapePerClass)
{
    FaultInjector inj(cfg_);
    Rng rng(3);
    const StackGeometry &g = cfg_.geom;

    const Fault bit =
        inj.makeFault(rng, FaultClass::Bit, StackId{0}, ChannelId{1}, true, 0.0);
    EXPECT_EQ(bit.rowsCovered(g), 1u);
    EXPECT_EQ(bit.banksCovered(g), 1u);
    EXPECT_EQ(bit.bitsPerLine(g), 1u);
    EXPECT_TRUE(bit.transient);

    const Fault word =
        inj.makeFault(rng, FaultClass::Word, StackId{0}, ChannelId{1}, false, 0.0);
    EXPECT_EQ(word.rowsCovered(g), 1u);
    EXPECT_EQ(word.bitsPerLine(g), 64u);

    const Fault col =
        inj.makeFault(rng, FaultClass::Column, StackId{0}, ChannelId{1}, false, 0.0);
    EXPECT_EQ(col.rowsCovered(g), g.rowsPerBank);
    EXPECT_EQ(col.banksCovered(g), 1u);
    EXPECT_EQ(col.col.mask, 0xFFFFFFFFu); // one line slot
    EXPECT_EQ(col.bitsPerLine(g), 512u);

    const Fault row =
        inj.makeFault(rng, FaultClass::Row, StackId{0}, ChannelId{1}, false, 0.0);
    EXPECT_EQ(row.rowsCovered(g), 1u);
    EXPECT_EQ(row.bitsPerLine(g), 512u);

    const Fault sub =
        inj.makeFault(rng, FaultClass::SubArray, StackId{0}, ChannelId{1}, false, 0.0);
    EXPECT_EQ(sub.rowsCovered(g), cfg_.subArrayRows);
    EXPECT_EQ(sub.banksCovered(g), 1u);

    const Fault bank =
        inj.makeFault(rng, FaultClass::Bank, StackId{0}, ChannelId{1}, false, 0.0);
    EXPECT_EQ(bank.rowsCovered(g), g.rowsPerBank);
    EXPECT_TRUE(bank.singleBank(g));

    const Fault chan =
        inj.makeFault(rng, FaultClass::Channel, StackId{0}, ChannelId{1}, false, 0.0);
    EXPECT_EQ(chan.banksCovered(g), g.banksPerChannel);
}

TEST_F(InjectorTest, TsvFaultsAreSevere)
{
    FaultInjector inj(cfg_);
    Rng rng(4);
    const StackGeometry &g = cfg_.geom;
    std::map<FaultClass, int> seen;
    for (int i = 0; i < 2000; ++i) {
        const Fault f = inj.makeTsvFault(rng, StackId{0}, 0.0);
        ASSERT_TRUE(f.fromTsv);
        ASSERT_FALSE(f.transient);
        ++seen[f.cls];
        switch (f.cls) {
          case FaultClass::DataTsv:
            // Two bits per line in every bank of the channel.
            EXPECT_EQ(f.bitsPerLine(g), 2u);
            EXPECT_EQ(f.banksCovered(g), g.banksPerChannel);
            break;
          case FaultClass::AddrTsvRow:
            EXPECT_EQ(f.rowsCovered(g), g.rowsPerBank / 2);
            EXPECT_EQ(f.banksCovered(g), g.banksPerChannel);
            break;
          case FaultClass::AddrTsvBank:
            EXPECT_EQ(f.banksCovered(g), g.banksPerChannel / 2);
            break;
          case FaultClass::Channel:
            EXPECT_EQ(f.banksCovered(g), g.banksPerChannel);
            EXPECT_EQ(f.rowsCovered(g), g.rowsPerBank);
            break;
          default:
            FAIL() << "unexpected TSV fault class";
        }
    }
    // Data TSVs outnumber address TSVs ~256:24.
    EXPECT_GT(seen[FaultClass::DataTsv], 1500);
    EXPECT_GT(seen[FaultClass::AddrTsvRow], 10);
}

TEST_F(InjectorTest, SubArrayFractionControlsMix)
{
    cfg_.subArrayFraction = 1.0;
    FaultInjector all_sub(cfg_);
    Rng rng(5);
    // With fraction 1.0 every bank-class fault materializes as the
    // SubArray class.
    int bank_count = 0;
    for (int t = 0; t < 300; ++t)
        for (const Fault &f : all_sub.sampleLifetime(rng))
            if (f.cls == FaultClass::Bank)
                ++bank_count;
    EXPECT_EQ(bank_count, 0);
}

TEST_F(InjectorTest, TransientPermanentMixFollowsRates)
{
    cfg_.tsvDeviceFit = 0.0;
    FaultInjector inj(cfg_);
    Rng rng(6);
    u64 transients = 0;
    u64 permanents = 0;
    for (int t = 0; t < 4000; ++t)
        for (const Fault &f : inj.sampleLifetime(rng))
            (f.transient ? transients : permanents)++;
    const FitTable &r = cfg_.rates;
    const double t_fit = r.bit.transientFit + r.word.transientFit +
                         r.column.transientFit + r.row.transientFit +
                         r.bank.transientFit;
    const double expect_frac = t_fit / r.totalFit();
    const double got_frac =
        static_cast<double>(transients) /
        static_cast<double>(transients + permanents);
    EXPECT_NEAR(got_frac, expect_frac, 0.02);
}

TEST_F(InjectorTest, RejectsBadSubArrayConfig)
{
    cfg_.subArrayRows = 1000; // not a power of two
    EXPECT_DEATH(FaultInjector inj(cfg_), "power of two");
}

} // namespace
} // namespace citadel
