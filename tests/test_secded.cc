/**
 * @file
 * Tests for the SEC-DED(72,64) codec and the ECC-DIMM-style analytic
 * scheme: exhaustive single-bit correction, double-bit detection, and
 * the large-granularity blindness the paper motivates Citadel with.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ecc/secded.h"
#include "fault_builders.h"

namespace citadel {
namespace {

using namespace testing_helpers;

TEST(Secded, CleanRoundTrip)
{
    Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        const u64 data = rng.next();
        u64 d = data;
        EXPECT_EQ(Secded::decode(d, Secded::encode(data)),
                  Secded::Outcome::Clean);
        EXPECT_EQ(d, data);
    }
}

TEST(Secded, CorrectsEveryDataBit)
{
    Rng rng(2);
    const u64 data = rng.next();
    const u8 check = Secded::encode(data);
    for (u32 bit = 0; bit < 64; ++bit) {
        u64 corrupted = data ^ (1ull << bit);
        EXPECT_EQ(Secded::decode(corrupted, check),
                  Secded::Outcome::Corrected)
            << "bit " << bit;
        EXPECT_EQ(corrupted, data) << "bit " << bit;
    }
}

TEST(Secded, CorrectsEveryCheckBit)
{
    Rng rng(3);
    const u64 data = rng.next();
    const u8 check = Secded::encode(data);
    for (u32 bit = 0; bit < 8; ++bit) {
        u64 d = data;
        EXPECT_EQ(Secded::decode(d, check ^ static_cast<u8>(1 << bit)),
                  Secded::Outcome::Corrected)
            << "check bit " << bit;
        EXPECT_EQ(d, data);
    }
}

TEST(Secded, DetectsAllDoubleBitErrors)
{
    Rng rng(4);
    const u64 data = rng.next();
    const u8 check = Secded::encode(data);
    // Sample pairs across the 72-bit codeword.
    for (u32 a = 0; a < 72; a += 3) {
        for (u32 b = a + 1; b < 72; b += 5) {
            u64 d = data;
            u8 c = check;
            if (a < 64)
                d ^= 1ull << a;
            else
                c ^= static_cast<u8>(1 << (a - 64));
            if (b < 64)
                d ^= 1ull << b;
            else
                c ^= static_cast<u8>(1 << (b - 64));
            EXPECT_EQ(Secded::decode(d, c),
                      Secded::Outcome::DetectedDouble)
                << "bits " << a << "," << b;
        }
    }
}

TEST(Secded, TripleErrorsNeverSilentlyClean)
{
    Rng rng(5);
    int silent = 0;
    for (int iter = 0; iter < 500; ++iter) {
        const u64 data = rng.next();
        const u8 check = Secded::encode(data);
        u64 d = data;
        // Flip 3 distinct data bits.
        u32 bits[3];
        bits[0] = static_cast<u32>(rng.below(64));
        do {
            bits[1] = static_cast<u32>(rng.below(64));
        } while (bits[1] == bits[0]);
        do {
            bits[2] = static_cast<u32>(rng.below(64));
        } while (bits[2] == bits[0] || bits[2] == bits[1]);
        for (u32 b : bits)
            d ^= 1ull << b;
        u64 decoded = d;
        const auto out = Secded::decode(decoded, check);
        // Triple errors look like single errors (odd parity): the code
        // corrects the wrong bit or flags an invalid position -- but it
        // must never report Clean.
        if (out == Secded::Outcome::Clean)
            ++silent;
        if (out == Secded::Outcome::Corrected) {
            EXPECT_NE(decoded, data) << "3 flips cannot restore data";
        }
    }
    EXPECT_EQ(silent, 0);
}

class SecdedSchemeTest : public ::testing::Test
{
  protected:
    SystemConfig cfg_;

    bool
    unc(std::vector<Fault> faults)
    {
        SecdedScheme s;
        s.reset(cfg_);
        return s.uncorrectable(faults);
    }
};

TEST_F(SecdedSchemeTest, ToleratesBitAndDataTsvFaults)
{
    EXPECT_FALSE(unc({bitFault(0, 1, 2, 3, 4, 5)}));
    // DTSV fault: one bit in each of two different 64-bit words.
    EXPECT_FALSE(unc({dataTsvFault(0, 1, 9)}));
}

TEST_F(SecdedSchemeTest, LargeGranularityIsFatal)
{
    // The paper's Section I claim about conventional ECC DIMMs.
    EXPECT_TRUE(unc({wordFault(0, 1, 2, 3, 4, 1)}));
    EXPECT_TRUE(unc({rowFault(0, 1, 2, 3)}));
    EXPECT_TRUE(unc({columnFault(0, 1, 2, 3)}));
    EXPECT_TRUE(unc({bankFault(0, 1, 2)}));
    EXPECT_TRUE(unc({channelFault(0, 1)}));
    EXPECT_TRUE(unc({addrTsvRowFault(0, 1, 4, 0)}));
}

TEST_F(SecdedSchemeTest, TwoBitFaultsSameLineFatal)
{
    EXPECT_TRUE(
        unc({bitFault(0, 1, 2, 3, 4, 5), bitFault(0, 1, 2, 3, 4, 9)}));
    EXPECT_FALSE(
        unc({bitFault(0, 1, 2, 3, 4, 5), bitFault(0, 1, 2, 3, 5, 9)}));
}

TEST_F(SecdedSchemeTest, WeakestOfAllSchemes)
{
    // Sanity against the reliability hierarchy: SEC-DED must be no
    // better than the Same-Bank symbol code on a large-fault pattern.
    SecdedScheme secded;
    secded.reset(cfg_);
    EXPECT_TRUE(secded.uncorrectable({rowFault(0, 1, 2, 3)}));
}

} // namespace
} // namespace citadel
