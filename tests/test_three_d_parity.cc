/**
 * @file
 * Tests for the analytic 3DP evaluator (Section VI): single faults of
 * every granularity are correctable, the dimension-count ablation
 * behaves as Fig 14 expects, and multi-fault peeling handles the
 * paper's "two faults disambiguated by another dimension" cases.
 */

#include <gtest/gtest.h>

#include "citadel/three_d_parity.h"
#include "fault_builders.h"

namespace citadel {
namespace {

using namespace testing_helpers;

class ThreeDPTest : public ::testing::Test
{
  protected:
    SystemConfig cfg_;

    bool
    unc(u32 dims, std::vector<Fault> faults)
    {
        MultiDimParityScheme s(dims);
        s.reset(cfg_);
        return s.uncorrectable(faults);
    }
};

TEST_F(ThreeDPTest, SingleFaultsOfEveryGranularityCorrectable)
{
    for (u32 dims : {1u, 2u, 3u}) {
        EXPECT_FALSE(unc(dims, {bitFault(0, 1, 2, 3, 4, 5)})) << dims;
        EXPECT_FALSE(unc(dims, {wordFault(0, 1, 2, 3, 4, 1)})) << dims;
        EXPECT_FALSE(unc(dims, {rowFault(0, 1, 2, 3)})) << dims;
        EXPECT_FALSE(unc(dims, {columnFault(0, 1, 2, 3)})) << dims;
        EXPECT_FALSE(unc(dims, {bankFault(0, 1, 2)})) << dims;
    }
}

TEST_F(ThreeDPTest, ChannelAndTsvFaultsUncorrectableWithoutSwap)
{
    // Multi-bank faults exceed one unknown unit per D1 group.
    EXPECT_TRUE(unc(3, {channelFault(0, 1)}));
    EXPECT_TRUE(unc(3, {dataTsvFault(0, 1, 7)}));
    EXPECT_TRUE(unc(3, {addrTsvRowFault(0, 1, 9, 1)}));
}

TEST_F(ThreeDPTest, TwoBankFaultsDefeatEvenThreeDims)
{
    // Both banks collide in every D1 row group; D2/D3 cannot fold
    // multi-row unknowns.
    EXPECT_TRUE(unc(3, {bankFault(0, 1, 2), bankFault(0, 2, 5)}));
}

TEST_F(ThreeDPTest, BankPlusBitIsWhereDimensionsMatter)
{
    // The Fig 14 motivation: 1DP dies on bank + bit; 2DP survives when
    // the bit fault sits in a different die.
    const auto faults = std::vector<Fault>{
        bankFault(0, 1, 2), bitFault(0, 3, 4, 100, 5, 6)};
    EXPECT_TRUE(unc(1, faults));
    EXPECT_FALSE(unc(2, faults));
    EXPECT_FALSE(unc(3, faults));
}

TEST_F(ThreeDPTest, BankPlusBitSameDieNeedsD3)
{
    // Bit fault in the same die as the bank fault: D2's die group is
    // contaminated; D3 (same bank position across dies) disambiguates.
    const auto faults = std::vector<Fault>{
        bankFault(0, 1, 2), bitFault(0, 1, 4, 100, 5, 6)};
    EXPECT_TRUE(unc(1, faults));
    EXPECT_TRUE(unc(2, faults));
    EXPECT_FALSE(unc(3, faults));
}

TEST_F(ThreeDPTest, BankPlusBitSameDieSameBankPosition)
{
    // Same die AND same bank position is impossible for two distinct
    // units; same die + same bank = same unit, which D1 handles.
    const auto faults = std::vector<Fault>{
        bankFault(0, 1, 2), bitFault(0, 1, 2, 100, 5, 6)};
    EXPECT_FALSE(unc(1, faults));
}

TEST_F(ThreeDPTest, RowRowSameRowIndexDifferentDies)
{
    // Two row faults at the same row index in different dies collide in
    // D1 and in nothing else if bank positions differ.
    const auto faults = std::vector<Fault>{rowFault(0, 1, 2, 50),
                                           rowFault(0, 3, 4, 50)};
    EXPECT_TRUE(unc(1, faults));
    EXPECT_FALSE(unc(2, faults));
}

TEST_F(ThreeDPTest, RowRowSameDieOverlappingColumns)
{
    // Same die, same row index, different banks: D1 collides (same row
    // group), D2 collides (same die, both full-row column extent), D3
    // resolves (different bank positions).
    const auto faults = std::vector<Fault>{rowFault(0, 1, 2, 50),
                                           rowFault(0, 1, 3, 50)};
    EXPECT_TRUE(unc(1, faults));
    EXPECT_TRUE(unc(2, faults));
    EXPECT_FALSE(unc(3, faults));
}

TEST_F(ThreeDPTest, ThreeWayCollisionStillPeels)
{
    // Three row faults at one row index: the (die 1, bank 3) fault has
    // a clean D3 group, peels first, and unravels the rest. This is
    // the "highly unlikely to fall into the same block in the other
    // two dimensions" property of Section VI.
    const auto faults = std::vector<Fault>{
        rowFault(0, 1, 2, 50),  // the victim
        rowFault(0, 1, 3, 50),  // same die, same row
        rowFault(0, 4, 2, 50)}; // same bank position, same row
    EXPECT_FALSE(unc(3, faults));
}

TEST_F(ThreeDPTest, RectangleOfRowFaultsUncorrectable)
{
    // A 2x2 rectangle over (die, bank position) at one row index jams
    // every dimension symmetrically: each fault has a dirty D1 row
    // group, a dirty die (D2) and a dirty bank position (D3).
    const auto faults = std::vector<Fault>{
        rowFault(0, 1, 2, 50), rowFault(0, 1, 3, 50),
        rowFault(0, 4, 2, 50), rowFault(0, 4, 3, 50)};
    EXPECT_TRUE(unc(3, faults));
}

TEST_F(ThreeDPTest, DisjointRowsPeelIndependently)
{
    const auto faults = std::vector<Fault>{
        rowFault(0, 1, 2, 50), rowFault(0, 1, 3, 51),
        rowFault(0, 4, 2, 52), bitFault(0, 5, 5, 53, 1, 2)};
    EXPECT_FALSE(unc(1, faults));
}

TEST_F(ThreeDPTest, SameUnitFaultsMergeInD1)
{
    // Multiple faults within one (die, bank) unit are one unknown unit.
    const auto faults = std::vector<Fault>{
        bankFault(0, 1, 2), rowFault(0, 1, 2, 50),
        bitFault(0, 1, 2, 60, 2, 3)};
    EXPECT_FALSE(unc(1, faults));
}

TEST_F(ThreeDPTest, DifferentStacksNeverInteract)
{
    const auto faults = std::vector<Fault>{bankFault(0, 1, 2),
                                           bankFault(1, 2, 5)};
    EXPECT_FALSE(unc(1, faults));
}

TEST_F(ThreeDPTest, ColumnPlusDisjointBitInSameDie)
{
    // Column fault needs D1 (covers all rows); a bit fault in another
    // unit of the same stack sharing (row range, col) blocks D1 for
    // that row but the bit fault itself peels via D2/D3 first.
    const auto faults = std::vector<Fault>{
        columnFault(0, 1, 2, 7), bitFault(0, 3, 4, 100, 7, 5)};
    EXPECT_TRUE(unc(1, faults));  // D1 alone is stuck
    EXPECT_FALSE(unc(2, faults)); // bit peels via D2, then column via D1
}

TEST_F(ThreeDPTest, ColumnPlusBitDifferentColSlot)
{
    // Disjoint column slots: D1 groups never overlap.
    const auto faults = std::vector<Fault>{
        columnFault(0, 1, 2, 7), bitFault(0, 3, 4, 100, 8, 5)};
    EXPECT_FALSE(unc(1, faults));
}

TEST_F(ThreeDPTest, EmptySetCorrectable)
{
    EXPECT_FALSE(unc(3, {}));
}

TEST_F(ThreeDPTest, NamesAndDims)
{
    EXPECT_EQ(MultiDimParityScheme(1).name(), "1DP");
    EXPECT_EQ(MultiDimParityScheme(2).name(), "2DP");
    EXPECT_EQ(MultiDimParityScheme(3).name(), "3DP");
    EXPECT_DEATH(MultiDimParityScheme(0), "dims");
    EXPECT_DEATH(MultiDimParityScheme(4), "dims");
}

TEST_F(ThreeDPTest, MoreDimsNeverHurt)
{
    // Property: any set correctable with k dims stays correctable with
    // k+1 dims (on a representative selection).
    const std::vector<std::vector<Fault>> cases = {
        {bitFault(0, 1, 2, 3, 4, 5)},
        {bankFault(0, 1, 2), bitFault(0, 3, 4, 100, 5, 6)},
        {rowFault(0, 1, 2, 50), rowFault(0, 1, 3, 50)},
        {bankFault(0, 1, 2), bankFault(0, 2, 5)},
        {columnFault(0, 1, 2, 7), bitFault(0, 3, 4, 100, 7, 5)},
    };
    for (const auto &c : cases) {
        for (u32 dims = 1; dims < 3; ++dims) {
            if (!unc(dims, c)) {
                EXPECT_FALSE(unc(dims + 1, c));
            }
        }
    }
}

} // namespace
} // namespace citadel
