/**
 * @file
 * Tests for the FIT tables: the Section III-A scaling of Sridharan's
 * 1Gb field data must reproduce Table I.
 */

#include <gtest/gtest.h>

#include "faults/fit_rates.h"

namespace citadel {
namespace {

TEST(FitRates, PaperTableIVerbatim)
{
    const FitTable t = FitTable::paper8Gb();
    EXPECT_DOUBLE_EQ(t.bit.transientFit, 113.6);
    EXPECT_DOUBLE_EQ(t.bit.permanentFit, 148.8);
    EXPECT_DOUBLE_EQ(t.word.transientFit, 11.2);
    EXPECT_DOUBLE_EQ(t.word.permanentFit, 2.4);
    EXPECT_DOUBLE_EQ(t.column.transientFit, 2.6);
    EXPECT_DOUBLE_EQ(t.column.permanentFit, 10.5);
    EXPECT_DOUBLE_EQ(t.row.transientFit, 0.8);
    EXPECT_DOUBLE_EQ(t.row.permanentFit, 32.8);
    EXPECT_DOUBLE_EQ(t.bank.transientFit, 6.4);
    EXPECT_DOUBLE_EQ(t.bank.permanentFit, 80.0);
}

TEST(FitRates, ScalingReproducesTableI)
{
    const FitTable scaled = FitTable::sridharan1Gb().scaledForStackedDie();
    const FitTable paper = FitTable::paper8Gb();

    // Bit/word/row/bank scale exactly; column rounds in the paper
    // (1.4 * 1.9 = 2.66 printed as 2.6, 5.5 * 1.9 = 10.45 as 10.5).
    EXPECT_DOUBLE_EQ(scaled.bit.transientFit, paper.bit.transientFit);
    EXPECT_DOUBLE_EQ(scaled.bit.permanentFit, paper.bit.permanentFit);
    EXPECT_DOUBLE_EQ(scaled.word.transientFit, paper.word.transientFit);
    EXPECT_DOUBLE_EQ(scaled.word.permanentFit, paper.word.permanentFit);
    EXPECT_NEAR(scaled.column.transientFit, paper.column.transientFit,
                0.1);
    EXPECT_NEAR(scaled.column.permanentFit, paper.column.permanentFit,
                0.1);
    EXPECT_DOUBLE_EQ(scaled.row.transientFit, paper.row.transientFit);
    EXPECT_DOUBLE_EQ(scaled.row.permanentFit, paper.row.permanentFit);
    EXPECT_DOUBLE_EQ(scaled.bank.transientFit, paper.bank.transientFit);
    EXPECT_DOUBLE_EQ(scaled.bank.permanentFit, paper.bank.permanentFit);
}

TEST(FitRates, TotalsAreSums)
{
    const FitTable t = FitTable::paper8Gb();
    EXPECT_NEAR(t.totalFit(), 113.6 + 148.8 + 11.2 + 2.4 + 2.6 + 10.5 +
                                  0.8 + 32.8 + 6.4 + 80.0,
                1e-9);
    EXPECT_NEAR(t.bit.total(), 262.4, 1e-9);
}

TEST(FitRates, PermanentsDominateLargeGranularity)
{
    // The field data's key property: bank failures are as frequent as
    // bit failures, and mostly permanent.
    const FitTable t = FitTable::paper8Gb();
    EXPECT_GT(t.bank.permanentFit, t.row.permanentFit);
    EXPECT_GT(t.bank.permanentFit, t.column.permanentFit);
    EXPECT_GT(t.bank.permanentFit / t.bank.total(), 0.9);
}

} // namespace
} // namespace citadel
