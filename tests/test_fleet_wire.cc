/**
 * @file
 * Wire-protocol gate: the frame codec round-trips every record field,
 * rejects every malformed frame (truncated, bit-flipped, wrong
 * version/kind/count/length, corrupt records) without crashing, stays
 * zero-copy on decode, and both transports deliver frames intact —
 * including AF_UNIX socketpair runs large enough to fragment in the
 * kernel buffer. SubmissionShards' generation stamping is pinned here
 * too: a stale slot can never leak into a frame.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "common/rng.h"
#include "ecc/crc32.h"
#include "fleet/wire.h"

namespace citadel {
namespace fleet {
namespace {

Request
makeRequest(u64 i)
{
    Request r;
    r.op = mix64(i * 0x9E3779B97F4A7C15ull + 1);
    r.key = mix64(i ^ 0xA5A5ull);
    r.version = mix64(i + 17) | 1;
    r.value = mix64(i + 29);
    r.attempt = static_cast<u32>(mix64(i + 41) & 0xFFFFu);
    r.replica = static_cast<u32>(i % 7);
    r.kind = (i & 1) ? OpKind::Write : OpKind::Read;
    return r;
}

Response
makeResponse(u64 i)
{
    Response r;
    r.op = mix64(i * 0xBF58476D1CE4E5B9ull + 3);
    r.version = mix64(i + 5);
    r.value = mix64(i + 7);
    r.attempt = static_cast<u32>(mix64(i + 11) & 0xFFFFu);
    r.replica = static_cast<u32>(i % 5);
    r.from = static_cast<ServerIdx>(i % 13);
    r.status = static_cast<Status>(i % 4); // Ok..Busy, all valid.
    return r;
}

std::vector<u8>
encodeRequests(u32 n)
{
    FrameWriter w;
    w.beginRequestFrame();
    for (u32 i = 0; i < n; ++i)
        w.add(makeRequest(i));
    const std::span<const u8> frame = w.finish();
    return {frame.begin(), frame.end()};
}

std::vector<u8>
encodeResponses(u32 n)
{
    FrameWriter w;
    w.beginResponseFrame();
    for (u32 i = 0; i < n; ++i)
        w.add(makeResponse(i));
    const std::span<const u8> frame = w.finish();
    return {frame.begin(), frame.end()};
}

/** Recompute and patch the stored CRC after a deliberate header/
 *  payload mutation, so the test isolates the field check under test
 *  from the CRC check. */
void
patchCrc(std::vector<u8> &frame)
{
    ASSERT_GE(frame.size(), kFrameHeaderBytes);
    u32 state = Crc32::begin();
    state = Crc32::update(state, std::span<const u8>{frame.data(), 12});
    state = Crc32::update(
        state, std::span<const u8>{frame.data() + kFrameHeaderBytes,
                                   frame.size() - kFrameHeaderBytes});
    const u32 crc = Crc32::finish(state);
    frame[12] = static_cast<u8>(crc);
    frame[13] = static_cast<u8>(crc >> 8);
    frame[14] = static_cast<u8>(crc >> 16);
    frame[15] = static_cast<u8>(crc >> 24);
}

TEST(FleetWire, RequestBatchRoundTripsEveryField)
{
    const u32 n = 57;
    const std::vector<u8> frame = encodeRequests(n);
    EXPECT_EQ(frame.size(),
              kFrameHeaderBytes + n * kRequestRecordBytes);

    FrameView view;
    std::size_t consumed = 0;
    ASSERT_EQ(decodeFrame(frame, view, &consumed), DecodeStatus::Ok);
    EXPECT_EQ(consumed, frame.size());
    ASSERT_EQ(view.kind(), FrameKind::RequestBatch);
    ASSERT_EQ(view.count(), n);
    for (u32 i = 0; i < n; ++i) {
        const Request want = makeRequest(i);
        const Request got = view.requestAt(i);
        EXPECT_EQ(got.op, want.op);
        EXPECT_EQ(got.key, want.key);
        EXPECT_EQ(got.version, want.version);
        EXPECT_EQ(got.value, want.value);
        EXPECT_EQ(got.attempt, want.attempt);
        EXPECT_EQ(got.replica, want.replica);
        EXPECT_EQ(got.kind, want.kind);
    }
}

TEST(FleetWire, ResponseBatchRoundTripsEveryField)
{
    const u32 n = 33;
    const std::vector<u8> frame = encodeResponses(n);
    EXPECT_EQ(frame.size(),
              kFrameHeaderBytes + n * kResponseRecordBytes);

    FrameView view;
    ASSERT_EQ(decodeFrame(frame, view), DecodeStatus::Ok);
    ASSERT_EQ(view.kind(), FrameKind::ResponseBatch);
    ASSERT_EQ(view.count(), n);
    for (u32 i = 0; i < n; ++i) {
        const Response want = makeResponse(i);
        const Response got = view.responseAt(i);
        EXPECT_EQ(got.op, want.op);
        EXPECT_EQ(got.version, want.version);
        EXPECT_EQ(got.value, want.value);
        EXPECT_EQ(got.attempt, want.attempt);
        EXPECT_EQ(got.replica, want.replica);
        EXPECT_EQ(got.from, want.from);
        EXPECT_EQ(got.status, want.status);
    }
}

TEST(FleetWire, EmptyFrameRoundTrips)
{
    const std::vector<u8> frame = encodeRequests(0);
    EXPECT_EQ(frame.size(), kFrameHeaderBytes);
    FrameView view;
    ASSERT_EQ(decodeFrame(frame, view), DecodeStatus::Ok);
    EXPECT_EQ(view.count(), 0u);
}

TEST(FleetWire, MaxRecordFrameRoundTrips)
{
    const std::vector<u8> frame = encodeRequests(kMaxFrameRecords);
    FrameView view;
    ASSERT_EQ(decodeFrame(frame, view), DecodeStatus::Ok);
    EXPECT_EQ(view.count(), kMaxFrameRecords);
    EXPECT_EQ(view.requestAt(kMaxFrameRecords - 1).op,
              makeRequest(kMaxFrameRecords - 1).op);
}

TEST(FleetWire, DecodeIsZeroCopy)
{
    const std::vector<u8> frame = encodeRequests(9);
    FrameView view;
    ASSERT_EQ(decodeFrame(frame, view), DecodeStatus::Ok);
    // The payload pointer must alias the input buffer, not a copy.
    EXPECT_EQ(view.payload(), frame.data() + kFrameHeaderBytes);
}

TEST(FleetWire, ConsumedLeavesTrailingBytesForTheNextFrame)
{
    const std::vector<u8> first = encodeRequests(5);
    const std::vector<u8> second = encodeRequests(11);
    std::vector<u8> stream = first;
    stream.insert(stream.end(), second.begin(), second.end());

    FrameView view;
    std::size_t consumed = 0;
    ASSERT_EQ(decodeFrame(stream, view, &consumed), DecodeStatus::Ok);
    EXPECT_EQ(consumed, first.size());
    EXPECT_EQ(view.count(), 5u);

    const std::span<const u8> rest{stream.data() + consumed,
                                   stream.size() - consumed};
    ASSERT_EQ(decodeFrame(rest, view, &consumed), DecodeStatus::Ok);
    EXPECT_EQ(consumed, second.size());
    EXPECT_EQ(view.count(), 11u);
}

TEST(FleetWire, EveryTruncationIsReportedAsTruncated)
{
    const std::vector<u8> frame = encodeRequests(7);
    for (std::size_t len = 0; len < frame.size(); ++len) {
        FrameView view;
        const std::span<const u8> prefix{frame.data(), len};
        EXPECT_EQ(decodeFrame(prefix, view), DecodeStatus::Truncated)
            << "prefix length " << len;
    }
}

TEST(FleetWire, EverySingleBitFlipIsRejected)
{
    const std::vector<u8> frame = encodeRequests(8);
    for (std::size_t byte = 0; byte < frame.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::vector<u8> bad = frame;
            bad[byte] ^= static_cast<u8>(1u << bit);
            FrameView view;
            EXPECT_NE(decodeFrame(bad, view), DecodeStatus::Ok)
                << "flip survived at byte " << byte << " bit " << bit;
        }
    }
}

TEST(FleetWire, HeaderFieldChecksFireWithAValidCrc)
{
    // Each mutation gets a freshly patched CRC so the named check —
    // not BadCrc — is what rejects the frame.
    std::vector<u8> frame = encodeRequests(3);
    FrameView view;

    std::vector<u8> badMagic = frame;
    badMagic[0] ^= 0xFF;
    patchCrc(badMagic);
    EXPECT_EQ(decodeFrame(badMagic, view), DecodeStatus::BadMagic);

    std::vector<u8> badVersion = frame;
    badVersion[4] = kWireVersion + 1;
    patchCrc(badVersion);
    EXPECT_EQ(decodeFrame(badVersion, view), DecodeStatus::BadVersion);

    std::vector<u8> badKind = frame;
    badKind[5] = 3;
    patchCrc(badKind);
    EXPECT_EQ(decodeFrame(badKind, view), DecodeStatus::BadKind);

    std::vector<u8> badCount = frame;
    const u32 over = kMaxFrameRecords + 1;
    badCount[6] = static_cast<u8>(over);
    badCount[7] = static_cast<u8>(over >> 8);
    patchCrc(badCount);
    EXPECT_EQ(decodeFrame(badCount, view), DecodeStatus::BadCount);

    std::vector<u8> badLength = frame;
    badLength[8] ^= 0x01; // payload-bytes no longer count * record.
    patchCrc(badLength);
    EXPECT_EQ(decodeFrame(badLength, view), DecodeStatus::BadLength);

    std::vector<u8> badCrc = frame;
    badCrc[12] ^= 0xFF;
    EXPECT_EQ(decodeFrame(badCrc, view), DecodeStatus::BadCrc);

    // A request-kind enum byte out of range survives the CRC (we
    // repatch) and must be caught by the record check.
    std::vector<u8> badRecord = frame;
    badRecord[kFrameHeaderBytes + 40] = 7; // record 0's kind byte.
    patchCrc(badRecord);
    EXPECT_EQ(decodeFrame(badRecord, view), DecodeStatus::BadRecord);

    // A response-status byte out of range, same story.
    std::vector<u8> badStatus = encodeResponses(2);
    badStatus[kFrameHeaderBytes + 36] = 9; // record 0's status byte.
    patchCrc(badStatus);
    EXPECT_EQ(decodeFrame(badStatus, view), DecodeStatus::BadRecord);
}

TEST(FleetWire, GarbageBuffersNeverCrashTheDecoder)
{
    // Counter-seeded garbage of every small size: the decoder must
    // return a status — any status — without reading out of bounds
    // (ASan-checked in CI) or crashing.
    for (u64 round = 0; round < 64; ++round) {
        const std::size_t len = (mix64(round ^ 0xBADC0DEull) % 512);
        std::vector<u8> junk(len);
        for (std::size_t i = 0; i < len; ++i)
            junk[i] = static_cast<u8>(mix64(round * 131 + i));
        FrameView view;
        (void)decodeFrame(junk, view);
        // Adversarial sweep: grant the header a valid prefix so deeper
        // checks run against garbage payloads.
        if (len >= kFrameHeaderBytes) {
            junk[0] = 0x1F;
            junk[1] = 0xDE;
            junk[2] = 0x7A;
            junk[3] = 0xC1;
            junk[4] = kWireVersion;
            junk[5] = 1;
            (void)decodeFrame(junk, view);
        }
    }
    SUCCEED();
}

TEST(FleetWire, WriterIsReusableWithoutStaleState)
{
    FrameWriter w;
    w.beginRequestFrame();
    for (u32 i = 0; i < 20; ++i)
        w.add(makeRequest(i));
    (void)w.finish();

    // Re-begin must fully reset: a 1-record frame after a 20-record
    // frame decodes as exactly 1 record.
    w.beginRequestFrame();
    w.add(makeRequest(99));
    const std::span<const u8> frame = w.finish();
    FrameView view;
    ASSERT_EQ(decodeFrame(frame, view), DecodeStatus::Ok);
    ASSERT_EQ(view.count(), 1u);
    EXPECT_EQ(view.requestAt(0).op, makeRequest(99).op);
}

TEST(FleetWire, ParseTransportModeIsExact)
{
    EXPECT_EQ(parseTransportMode("direct"), TransportMode::Direct);
    EXPECT_EQ(parseTransportMode("loopback"), TransportMode::Loopback);
    EXPECT_EQ(parseTransportMode("socket"), TransportMode::Socket);
    EXPECT_EQ(parseTransportMode(""), std::nullopt);
    EXPECT_EQ(parseTransportMode("Loopback"), std::nullopt);
    EXPECT_EQ(parseTransportMode("SOCKET"), std::nullopt);
    EXPECT_EQ(parseTransportMode("loopback "), std::nullopt);
    EXPECT_EQ(parseTransportMode("tcp"), std::nullopt);
}

void
roundTripOverTransport(Transport &t)
{
    ThreadRoleGrant serial(kSerialPhase);
    const u32 servers = t.servers();

    // Both directions, several frames per channel, sized to straddle
    // any kernel socket buffer when the transport is real: reassembly
    // from fragmented reads is part of the contract.
    const u32 framesPerServer = 24;
    const u32 recordsPerFrame = 96;
    FrameWriter w;
    for (u32 s = 0; s < servers; ++s) {
        for (u32 f = 0; f < framesPerServer; ++f) {
            w.beginRequestFrame();
            for (u32 i = 0; i < recordsPerFrame; ++i)
                w.add(makeRequest(u64(s) * 1000 + f * 100 + i));
            t.sendToServer(s, w.finish());

            w.beginResponseFrame();
            for (u32 i = 0; i < recordsPerFrame; ++i)
                w.add(makeResponse(u64(s) * 1000 + f * 100 + i));
            t.sendToClient(s, w.finish());
        }
    }
    t.poll();

    for (u32 s = 0; s < servers; ++s) {
        for (int dir = 0; dir < 2; ++dir) {
            RxStream &rx = dir == 0 ? t.serverRx(s) : t.clientRx(s);
            u32 frames = 0;
            while (!rx.pending().empty()) {
                FrameView view;
                std::size_t consumed = 0;
                ASSERT_EQ(decodeFrame(rx.pending(), view, &consumed),
                          DecodeStatus::Ok);
                ASSERT_EQ(view.count(), recordsPerFrame);
                const u64 base = u64(s) * 1000 + frames * 100;
                if (dir == 0) {
                    ASSERT_EQ(view.kind(), FrameKind::RequestBatch);
                    EXPECT_EQ(view.requestAt(5).op,
                              makeRequest(base + 5).op);
                } else {
                    ASSERT_EQ(view.kind(), FrameKind::ResponseBatch);
                    EXPECT_EQ(view.responseAt(5).op,
                              makeResponse(base + 5).op);
                }
                rx.consume(consumed);
                ++frames;
            }
            rx.compact();
            EXPECT_EQ(frames, framesPerServer)
                << "server " << s << " dir " << dir;
        }
    }
}

TEST(FleetWire, LoopbackTransportRoundTrips)
{
    LoopbackTransport t(5);
    roundTripOverTransport(t);
}

TEST(FleetWire, SocketTransportRoundTripsThroughRealSocketpairs)
{
    SocketTransport t(5);
    roundTripOverTransport(t);
}

TEST(FleetWire, MakeTransportMatchesMode)
{
    EXPECT_EQ(makeTransport(TransportMode::Direct, 4), nullptr);
    EXPECT_NE(makeTransport(TransportMode::Loopback, 4), nullptr);
    EXPECT_NE(makeTransport(TransportMode::Socket, 4), nullptr);
}

TEST(FleetWire, SubmissionShardsDrainInInsertionOrder)
{
    ThreadRoleGrant serial(kSerialPhase);
    SubmissionShards shards(3);
    for (u64 i = 0; i < 10; ++i)
        shards.add(static_cast<u32>(i % 3), makeRequest(i));
    EXPECT_EQ(shards.count(0), 4u);
    EXPECT_EQ(shards.count(1), 3u);
    EXPECT_EQ(shards.count(2), 3u);

    // Drain preserves insertion order, and each slot carries the
    // GLOBAL submission sequence (not a per-shard one): server 0 got
    // every third add.
    std::vector<u64> seen;
    std::vector<u32> seqs;
    shards.drain(0, [&](const Request &r, u32 seq) {
        seen.push_back(r.op);
        seqs.push_back(seq);
    });
    ASSERT_EQ(seen.size(), 4u);
    EXPECT_EQ(seen[0], makeRequest(0).op);
    EXPECT_EQ(seen[1], makeRequest(3).op);
    EXPECT_EQ(seen[2], makeRequest(6).op);
    EXPECT_EQ(seen[3], makeRequest(9).op);
    ASSERT_EQ(seqs.size(), 4u);
    EXPECT_EQ(seqs[0], 0u);
    EXPECT_EQ(seqs[1], 3u);
    EXPECT_EQ(seqs[2], 6u);
    EXPECT_EQ(seqs[3], 9u);
}

TEST(FleetWire, NextGenerationEmptiesEveryShardAndReusesSlots)
{
    ThreadRoleGrant serial(kSerialPhase);
    SubmissionShards shards(2);
    for (u64 i = 0; i < 6; ++i)
        shards.add(0, makeRequest(i));
    const u64 gen = shards.generation();
    shards.nextGeneration();
    EXPECT_EQ(shards.generation(), gen + 1);
    EXPECT_EQ(shards.count(0), 0u);
    EXPECT_EQ(shards.count(1), 0u);

    // Slots below the high-watermark are reused with a fresh stamp:
    // drain sees only this generation's requests.
    shards.add(0, makeRequest(100));
    std::vector<u64> seen;
    std::vector<u32> seqs;
    shards.drain(0, [&](const Request &r, u32 seq) {
        seen.push_back(r.op);
        seqs.push_back(seq);
    });
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0], makeRequest(100).op);
    // The sequence counter resets with the generation.
    ASSERT_EQ(seqs.size(), 1u);
    EXPECT_EQ(seqs[0], 0u);
}

} // namespace
} // namespace fleet
} // namespace citadel
