/**
 * @file
 * Tests for the ASCII table printer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.h"

namespace citadel {
namespace {

TEST(Table, AlignsColumns)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"long-name", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("long-name"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(Table::num(1.5, 2), "1.50");
    EXPECT_EQ(Table::num(0.0, 2), "0.00");
    // Tiny magnitudes switch to scientific notation.
    EXPECT_NE(Table::num(1e-7, 2).find('e'), std::string::npos);
    EXPECT_NE(Table::num(1e9, 2).find('e'), std::string::npos);
}

TEST(Table, ProbAndPct)
{
    EXPECT_EQ(Table::prob(0.00123), "1.230e-03");
    EXPECT_EQ(Table::pct(0.5), "50.00%");
}

TEST(Table, RowArityMismatchDies)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "arity");
}

TEST(Banner, ContainsTitle)
{
    std::ostringstream os;
    printBanner(os, "Figure 4");
    EXPECT_NE(os.str().find("Figure 4"), std::string::npos);
}

} // namespace
} // namespace citadel
