/**
 * @file
 * Bit-true 3DP engine tests, including the property-based cross-check:
 * on randomized fault sets over a miniature stack, the analytic Monte
 * Carlo evaluator and the literal XOR-reconstruction engine must agree.
 */

#include <gtest/gtest.h>

#include "citadel/parity_engine.h"
#include "citadel/three_d_parity.h"
#include "fault_builders.h"
#include "faults/injector.h"

namespace citadel {
namespace {

using namespace testing_helpers;

class ParityEngineTest : public ::testing::Test
{
  protected:
    StackGeometry geom_ = StackGeometry::tiny();
    SystemConfig cfg_;

    void
    SetUp() override
    {
        cfg_.geom = geom_;
        cfg_.subArrayRows = 16;
    }
};

TEST_F(ParityEngineTest, PristineMemoryHasNoCorruptLines)
{
    ParityEngine eng(geom_);
    EXPECT_EQ(eng.corruptLineCount(), 0u);
    EXPECT_TRUE(eng.reconstruct(3));
}

TEST_F(ParityEngineTest, SingleBitFaultDetectedAndFixed)
{
    ParityEngine eng(geom_);
    eng.corrupt({bitFault(0, 1, 1, 10, 2, 77)});
    EXPECT_EQ(eng.corruptLineCount(), 1u);
    EXPECT_TRUE(eng.reconstruct(3));
    EXPECT_EQ(eng.corruptLineCount(), 0u);
}

TEST_F(ParityEngineTest, RowFaultFixedViaAnyDimension)
{
    for (u32 dims : {1u, 2u, 3u}) {
        ParityEngine eng(geom_);
        eng.corrupt({rowFault(0, 1, 1, 20)});
        EXPECT_EQ(eng.corruptLineCount(), geom_.linesPerRow());
        EXPECT_TRUE(eng.reconstruct(dims)) << "dims=" << dims;
    }
}

TEST_F(ParityEngineTest, BankFaultNeedsD1)
{
    ParityEngine eng(geom_);
    eng.corrupt({bankFault(0, 1, 1)});
    EXPECT_EQ(eng.corruptLineCount(),
              static_cast<u64>(geom_.rowsPerBank) * geom_.linesPerRow());
    EXPECT_TRUE(eng.reconstruct(1));
}

TEST_F(ParityEngineTest, ColumnFaultFixedViaD1)
{
    ParityEngine eng(geom_);
    eng.corrupt({columnFault(0, 0, 1, 2)});
    EXPECT_EQ(eng.corruptLineCount(), geom_.rowsPerBank);
    EXPECT_TRUE(eng.reconstruct(1));
}

TEST_F(ParityEngineTest, TwoBankFaultsUnrecoverable)
{
    ParityEngine eng(geom_);
    eng.corrupt({bankFault(0, 0, 0), bankFault(0, 1, 1)});
    EXPECT_FALSE(eng.reconstruct(3));
}

TEST_F(ParityEngineTest, BankPlusBitRecoveredWithThreeDims)
{
    // Bit fault in a different die: D2 peels it, D1 fixes the bank.
    ParityEngine eng(geom_);
    eng.corrupt({bankFault(0, 0, 0), bitFault(0, 1, 1, 30, 1, 99)});
    EXPECT_FALSE(eng.reconstruct(1));
    eng.restore();
    eng.corrupt({bankFault(0, 0, 0), bitFault(0, 1, 1, 30, 1, 99)});
    EXPECT_TRUE(eng.reconstruct(2));
}

TEST_F(ParityEngineTest, RestoreResets)
{
    ParityEngine eng(geom_);
    eng.corrupt({bankFault(0, 0, 0)});
    EXPECT_GT(eng.corruptLineCount(), 0u);
    eng.restore();
    EXPECT_EQ(eng.corruptLineCount(), 0u);
}

TEST_F(ParityEngineTest, RejectsMultiStackGeometry)
{
    StackGeometry two = geom_;
    two.stacks = 2;
    EXPECT_DEATH(ParityEngine eng(two), "single-stack");
}

/**
 * The core property test: for randomized fault sets the analytic
 * evaluator's verdict must equal the bit-true engine's reconstruction
 * outcome, for every dimension count. Skipped when overlapping faults
 * cancel bit flips (the analytic model is conservatively pessimistic
 * there; see DESIGN.md).
 */
class CrossCheck : public ::testing::TestWithParam<u32>
{
};

TEST_P(CrossCheck, AnalyticMatchesBitTrue)
{
    const u32 dims = GetParam();
    StackGeometry geom = StackGeometry::tiny();
    SystemConfig cfg;
    cfg.geom = geom;
    cfg.subArrayRows = 16;
    FaultInjector inj(cfg);
    MultiDimParityScheme scheme(dims);
    scheme.reset(cfg);
    ParityEngine eng(geom);
    Rng rng(1234 + dims);

    const FaultClass classes[] = {
        FaultClass::Bit,    FaultClass::Word, FaultClass::Column,
        FaultClass::Row,    FaultClass::SubArray, FaultClass::Bank,
        FaultClass::Channel};

    int checked = 0;
    for (int iter = 0; iter < 120; ++iter) {
        const u32 nfaults = 1 + static_cast<u32>(rng.below(3));
        std::vector<Fault> faults;
        for (u32 i = 0; i < nfaults; ++i) {
            const FaultClass cls =
                classes[rng.below(std::size(classes))];
            const u32 die =
                static_cast<u32>(rng.below(geom.channelsPerStack + 1));
            faults.push_back(inj.makeFault(rng, cls, StackId{0},
                                           ChannelId{die},
                                           /*transient=*/false, 0.0));
        }

        eng.restore();
        eng.corrupt(faults);
        if (eng.corruptLineCount() == 0)
            continue; // overlapping flips cancelled; verdicts may differ

        const bool engine_ok = eng.reconstruct(dims);
        const bool analytic_unc = scheme.uncorrectable(faults);
        ASSERT_EQ(engine_ok, !analytic_unc)
            << "dims=" << dims << " iter=" << iter << " faults:"
            << [&] {
                   std::string s;
                   for (const auto &f : faults)
                       s += "\n  " + f.describe();
                   return s;
               }();
        ++checked;
    }
    EXPECT_GT(checked, 80);
}

INSTANTIATE_TEST_SUITE_P(AllDims, CrossCheck, ::testing::Values(1u, 2u, 3u));

} // namespace
} // namespace citadel
