/**
 * @file
 * Unit and statistical tests for the xoshiro256** RNG and its samplers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace citadel {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, ZeroSeedIsUsable)
{
    Rng r(0);
    std::set<u64> seen;
    for (int i = 0; i < 100; ++i)
        seen.insert(r.next());
    EXPECT_GT(seen.size(), 95u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    StreamingStats s;
    for (int i = 0; i < 20000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        s.add(u);
    }
    EXPECT_NEAR(s.mean(), 0.5, 0.01);
    EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, BelowIsUnbiased)
{
    Rng r(11);
    const u64 n = 10;
    std::vector<u64> counts(n, 0);
    const int trials = 50000;
    for (int i = 0; i < trials; ++i)
        ++counts[r.below(n)];
    for (u64 c : counts)
        EXPECT_NEAR(static_cast<double>(c), trials / 10.0,
                    5.0 * std::sqrt(trials / 10.0));
}

TEST(Rng, BelowOneAlwaysZero)
{
    Rng r(12);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, InRangeInclusive)
{
    Rng r(13);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const u64 v = r.inRange(3, 6);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 6u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 6);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(14);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
        EXPECT_FALSE(r.chance(-1.0));
        EXPECT_TRUE(r.chance(2.0));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(15);
    int hits = 0;
    const int trials = 40000;
    for (int i = 0; i < trials; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / static_cast<double>(trials), 0.3, 0.015);
}

TEST(Rng, ExponentialMean)
{
    Rng r(16);
    StreamingStats s;
    const double rate = 2.5;
    for (int i = 0; i < 40000; ++i)
        s.add(r.exponential(rate));
    EXPECT_NEAR(s.mean(), 1.0 / rate, 0.02);
}

TEST(Rng, PoissonZeroLambda)
{
    Rng r(17);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.poisson(0.0), 0u);
}

TEST(Rng, PoissonSmallLambdaMoments)
{
    Rng r(18);
    const double lambda = 0.25; // typical per-die fault count regime
    StreamingStats s;
    for (int i = 0; i < 80000; ++i)
        s.add(static_cast<double>(r.poisson(lambda)));
    EXPECT_NEAR(s.mean(), lambda, 0.01);
    EXPECT_NEAR(s.variance(), lambda, 0.02);
}

TEST(Rng, PoissonModerateLambdaMoments)
{
    Rng r(19);
    const double lambda = 8.0;
    StreamingStats s;
    for (int i = 0; i < 40000; ++i)
        s.add(static_cast<double>(r.poisson(lambda)));
    EXPECT_NEAR(s.mean(), lambda, 0.1);
    EXPECT_NEAR(s.variance(), lambda, 0.35);
}

TEST(Rng, PoissonLargeLambdaNormalPath)
{
    Rng r(20);
    const double lambda = 200.0;
    StreamingStats s;
    for (int i = 0; i < 20000; ++i)
        s.add(static_cast<double>(r.poisson(lambda)));
    EXPECT_NEAR(s.mean(), lambda, 1.0);
    EXPECT_NEAR(s.stddev(), std::sqrt(lambda), 0.6);
}

TEST(Rng, DiscreteRespectsWeights)
{
    Rng r(21);
    std::vector<double> w = {1.0, 0.0, 3.0};
    std::vector<int> counts(3, 0);
    const int trials = 40000;
    for (int i = 0; i < trials; ++i)
        ++counts[r.discrete(w)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(counts[0] / static_cast<double>(trials), 0.25, 0.01);
    EXPECT_NEAR(counts[2] / static_cast<double>(trials), 0.75, 0.01);
}

TEST(Rng, DiscreteAllZeroThrows)
{
    Rng r(22);
    std::vector<double> w = {0.0, 0.0};
    EXPECT_THROW(r.discrete(w), std::invalid_argument);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(33);
    Rng child = a.split();
    // The child must neither mirror the parent nor collapse.
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == child.next())
            ++same;
    EXPECT_LT(same, 2);
}

} // namespace
} // namespace citadel
