/**
 * @file
 * Positive control for the thread-safety compile-fail proof: the same
 * guarded-field access as tsa_guard_violation.cc, done correctly under
 * a MutexLock, plus a REQUIRES method called with the capability held.
 * Must compile cleanly under clang -Wthread-safety -Werror — proving
 * the harness flags are live and the annotated primitives themselves
 * are analysis-clean, so the violation file fails for the right
 * reason.
 */

#include "common/mutex.h"

namespace {

struct Counter
{
    citadel::Mutex mu;
    int value CITADEL_GUARDED_BY(mu) = 0;

    int safeRead()
    {
        citadel::MutexLock lock(mu);
        return value;
    }

    int lockedRead() CITADEL_REQUIRES(mu) { return value; }
};

} // namespace

int
main()
{
    Counter c;
    int total = c.safeRead();
    {
        citadel::MutexLock lock(c.mu);
        total += c.lockedRead();
    }
    return total;
}
