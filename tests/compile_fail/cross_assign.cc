/**
 * @file
 * Negative compile test: assigning a RowId where a BankId is expected
 * must NOT compile. tests/CMakeLists.txt try_compile()s this file at
 * configure time and fails the build if it ever succeeds — that would
 * mean the typed address domain has regressed to interconvertible
 * integers.
 */

#include "common/strong_id.h"

int
main()
{
    citadel::RowId row{7};
    citadel::BankId bank{0};
    bank = row; // must be rejected: different coordinate spaces
    return static_cast<int>(bank.value());
}
