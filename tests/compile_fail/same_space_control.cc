/**
 * @file
 * Positive control for the compile-fail harness: ordinary same-space
 * use of the typed ids must compile. If this file fails to build, the
 * harness (include paths, standard version) is broken and the negative
 * result from cross_assign.cc proves nothing.
 */

#include "common/strong_id.h"

int
main()
{
    citadel::RowId row{7};
    citadel::RowId other{0};
    other = row;
    citadel::BankId bank{3};
    ++bank;
    const citadel::DieId die = citadel::dieOf(citadel::ChannelId{2});
    return static_cast<int>(other.value() + bank.value() + die.value());
}
