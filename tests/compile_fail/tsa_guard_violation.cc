/**
 * @file
 * Compile-fail proof for the thread-safety gate (DESIGN.md section 13):
 * reading a CITADEL_GUARDED_BY field without holding its mutex must be
 * a build error under clang -Wthread-safety -Werror. The configure-time
 * harness in tests/CMakeLists.txt (CITADEL_THREAD_SAFETY=ON only)
 * asserts this file does NOT compile; if it ever does, the annotations
 * have been hollowed out and the gate is vacuous.
 *
 * The companion control (tsa_guard_control.cc) is the same access done
 * correctly under a MutexLock, and must compile.
 */

#include "common/mutex.h"

namespace {

struct Counter
{
    citadel::Mutex mu;
    int value CITADEL_GUARDED_BY(mu) = 0;

    // Unlocked access to a guarded field: the violation under test.
    int unsafeRead() { return value; }
};

} // namespace

int
main()
{
    Counter c;
    return c.unsafeRead();
}
