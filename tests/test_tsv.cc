/**
 * @file
 * Tests for the TSV map: data-TSV bit patterns and address-TSV
 * severity classification (Section V-B).
 */

#include <gtest/gtest.h>

#include "faults/fault.h"
#include "stack/tsv.h"

namespace citadel {
namespace {

class TsvTest : public ::testing::Test
{
  protected:
    StackGeometry geom_;
    TsvMap map_{geom_};
};

TEST_F(TsvTest, Counts)
{
    EXPECT_EQ(map_.numDataTsvs(), 256u);
    EXPECT_EQ(map_.numAddrTsvs(), 24u);
}

TEST_F(TsvTest, DataTsvPatternCoversBurstPositions)
{
    // DTSV-1 must corrupt bit[1] and bit[257] of every line (Fig 7).
    u32 value = 0;
    u32 mask = 0;
    map_.dataTsvBitPattern(TsvLane{1}, value, mask);
    DimSpec d = DimSpec::masked(value, mask);
    EXPECT_TRUE(d.matches(1));
    EXPECT_TRUE(d.matches(257));
    EXPECT_FALSE(d.matches(0));
    EXPECT_FALSE(d.matches(2));
    EXPECT_FALSE(d.matches(256));
}

TEST_F(TsvTest, DataTsvPatternExactlyTwoBits)
{
    for (u32 t : {0u, 7u, 64u, 255u}) {
        u32 value = 0;
        u32 mask = 0;
        map_.dataTsvBitPattern(TsvLane{t}, value, mask);
        DimSpec d = DimSpec::masked(value, mask);
        u32 hits = 0;
        for (u32 b = 0; b < geom_.bitsPerLine(); ++b)
            hits += d.matches(b);
        EXPECT_EQ(hits, geom_.burstLength()) << "DTSV " << t;
    }
}

TEST_F(TsvTest, DataTsvOutOfRangeDies)
{
    u32 v;
    u32 m;
    EXPECT_DEATH(map_.dataTsvBitPattern(TsvLane{256}, v, m), "out of range");
}

TEST_F(TsvTest, AddrTsvClassification)
{
    // 16 row bits, then 3 bank bits, then command TSVs.
    EXPECT_EQ(map_.addrTsvEffect(TsvLane{0}), AtsvEffect::HalfRows);
    EXPECT_EQ(map_.addrTsvEffect(TsvLane{15}), AtsvEffect::HalfRows);
    EXPECT_EQ(map_.addrTsvEffect(TsvLane{16}), AtsvEffect::HalfBanks);
    EXPECT_EQ(map_.addrTsvEffect(TsvLane{18}), AtsvEffect::HalfBanks);
    EXPECT_EQ(map_.addrTsvEffect(TsvLane{19}), AtsvEffect::WholeChannel);
    EXPECT_EQ(map_.addrTsvEffect(TsvLane{23}), AtsvEffect::WholeChannel);
}

TEST_F(TsvTest, RowAndBankBitExtraction)
{
    EXPECT_EQ(map_.addrTsvRowBit(TsvLane{5}), 5u);
    EXPECT_EQ(map_.addrTsvBankBit(TsvLane{17}), 1u);
    EXPECT_DEATH(map_.addrTsvRowBit(TsvLane{20}), "not a row-address");
    EXPECT_DEATH(map_.addrTsvBankBit(TsvLane{3}), "not a bank-address");
}

TEST(TsvMapConstruction, RejectsTooFewAtsvs)
{
    StackGeometry g;
    g.addrTsvsPerChannel = 4; // cannot carry 16 row + 3 bank bits
    EXPECT_DEATH(TsvMap m(g), "cannot carry");
}

} // namespace
} // namespace citadel
