/**
 * @file
 * Threaded smoke test for the ThreadSanitizer gate: the components a
 * Monte Carlo driver would naturally shard across threads (per-thread
 * Rng/injector/engine state over a shared const geometry and address
 * map) must be free of data races. Run under -DCITADEL_SANITIZE=thread
 * this catches any accidental shared mutable state; in a plain build it
 * is an ordinary (fast) determinism check.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "citadel/parity_engine.h"
#include "faults/injector.h"
#include "sim/workload.h"
#include "stack/address.h"

namespace citadel {
namespace {

TEST(ThreadedSmoke, SharedConstMapPerThreadEngines)
{
    SystemConfig cfg;
    cfg.geom = StackGeometry::tiny();
    cfg.subArrayRows = 16;
    const AddressMap map(cfg.geom);

    constexpr unsigned kThreads = 4;
    std::atomic<u64> coord_checksum{0};
    std::atomic<u64> corrected{0};
    std::atomic<bool> failed{false};

    std::vector<std::thread> pool;
    for (unsigned t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t]() {
            // Thread-private mutable state...
            Rng rng(100 + t);
            FaultInjector inj(cfg);
            ParityEngine engine(cfg.geom);
            // ...over the shared read-only map and geometry.
            u64 sum = 0;
            for (int i = 0; i < 200; ++i) {
                const LineAddr line{rng.below(cfg.geom.totalLines())};
                const LineCoord c = map.lineToCoord(line);
                if (map.coordToLine(c) != line)
                    failed = true;
                sum += c.row.value() + c.col.value();
            }
            coord_checksum += sum;

            engine.restore();
            const Fault f = inj.makeFault(rng, FaultClass::Row,
                                          StackId{0}, ChannelId{t % 2},
                                          /*transient=*/false, 0.0);
            engine.corrupt({f});
            if (engine.reconstruct(3))
                ++corrected;
            else
                failed = true;
        });
    }
    for (auto &th : pool)
        th.join();

    EXPECT_FALSE(failed.load());
    EXPECT_EQ(corrected.load(), kThreads);
    EXPECT_GT(coord_checksum.load(), 0u);
}

TEST(ThreadedSmoke, ConcurrentAddressStreamsAreIndependent)
{
    const auto &bench = findBenchmark("mcf");
    const u64 total = StackGeometry::tiny().totalLines();

    // Reference streams computed single-threaded.
    std::array<std::vector<LineAddr>, 4> expect;
    for (u32 core = 0; core < 4; ++core) {
        AddressStream s(bench, core, total, 7);
        for (int i = 0; i < 500; ++i)
            expect[core].push_back(s.nextLine());
    }

    std::atomic<bool> mismatch{false};
    std::vector<std::thread> pool;
    for (u32 core = 0; core < 4; ++core) {
        pool.emplace_back([&, core]() {
            AddressStream s(bench, core, total, 7);
            for (int i = 0; i < 500; ++i)
                if (s.nextLine() != expect[core][static_cast<u32>(i)])
                    mismatch = true;
        });
    }
    for (auto &th : pool)
        th.join();
    EXPECT_FALSE(mismatch.load());
}

} // namespace
} // namespace citadel
