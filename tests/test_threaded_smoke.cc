/**
 * @file
 * Threaded smoke test for the ThreadSanitizer gate: the components a
 * Monte Carlo driver would naturally shard across threads (per-thread
 * Rng/injector/engine state over a shared const geometry and address
 * map) must be free of data races. Run under -DCITADEL_SANITIZE=thread
 * this catches any accidental shared mutable state; in a plain build it
 * is an ordinary (fast) determinism check.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "citadel/citadel.h"
#include "citadel/parity_engine.h"
#include "common/thread_pool.h"
#include "faults/injector.h"
#include "faults/monte_carlo.h"
#include "sim/workload.h"
#include "stack/address.h"

namespace citadel {
namespace {

TEST(ThreadedSmoke, SharedConstMapPerThreadEngines)
{
    SystemConfig cfg;
    cfg.geom = StackGeometry::tiny();
    cfg.subArrayRows = 16;
    const AddressMap map(cfg.geom);

    constexpr unsigned kThreads = 4;
    std::atomic<u64> coord_checksum{0};
    std::atomic<u64> corrected{0};
    std::atomic<bool> failed{false};

    std::vector<std::thread> pool;
    for (unsigned t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t]() {
            // Thread-private mutable state...
            Rng rng(100 + t);
            FaultInjector inj(cfg);
            ParityEngine engine(cfg.geom);
            // ...over the shared read-only map and geometry.
            u64 sum = 0;
            for (int i = 0; i < 200; ++i) {
                const LineAddr line{rng.below(cfg.geom.totalLines())};
                const LineCoord c = map.lineToCoord(line);
                if (map.coordToLine(c) != line)
                    failed = true;
                sum += c.row.value() + c.col.value();
            }
            coord_checksum += sum;

            engine.restore();
            const Fault f = inj.makeFault(rng, FaultClass::Row,
                                          StackId{0}, ChannelId{t % 2},
                                          /*transient=*/false, 0.0);
            engine.corrupt({f});
            if (engine.reconstruct(3))
                ++corrected;
            else
                failed = true;
        });
    }
    for (auto &th : pool)
        th.join();

    EXPECT_FALSE(failed.load());
    EXPECT_EQ(corrected.load(), kThreads);
    EXPECT_GT(coord_checksum.load(), 0u);
}

TEST(ThreadedSmoke, ConcurrentAddressStreamsAreIndependent)
{
    const auto &bench = findBenchmark("mcf");
    const u64 total = StackGeometry::tiny().totalLines();

    // Reference streams computed single-threaded.
    std::array<std::vector<LineAddr>, 4> expect;
    for (u32 core = 0; core < 4; ++core) {
        AddressStream s(bench, core, total, 7);
        for (int i = 0; i < 500; ++i)
            expect[core].push_back(s.nextLine());
    }

    std::atomic<bool> mismatch{false};
    std::vector<std::thread> pool;
    for (u32 core = 0; core < 4; ++core) {
        pool.emplace_back([&, core]() {
            AddressStream s(bench, core, total, 7);
            for (int i = 0; i < 500; ++i)
                if (s.nextLine() != expect[core][static_cast<u32>(i)])
                    mismatch = true;
        });
    }
    for (auto &th : pool)
        th.join();
    EXPECT_FALSE(mismatch.load());
}

TEST(ThreadedSmoke, ThreadPoolHandoffIsRaceFree)
{
    // The production worker pool: fork/join handoff, dynamic chunk
    // claiming, and reuse across generations — the exact access
    // pattern MonteCarlo::run puts it through.
    ThreadPool pool(4);
    std::atomic<u64> sum{0};
    for (int round = 0; round < 8; ++round) {
        pool.parallelFor(1000, 16, [&](u64 begin, u64 end, unsigned) {
            u64 local = 0;
            for (u64 i = begin; i < end; ++i)
                local += i;
            sum.fetch_add(local, std::memory_order_relaxed);
        });
    }
    EXPECT_EQ(sum.load(), 8ull * (999ull * 1000ull / 2));
}

TEST(ThreadedSmoke, ParallelSuiteRunnerIsRaceFreeAndDeterministic)
{
    // The timing-bench fan-out: concurrent SystemSim runs over the
    // shared const benchmark table, each writing only its own result
    // slot. Under TSan this proves the runs share no mutable state;
    // in a plain build it is a fast determinism check.
    SimConfig base;
    base.llcBytes = 1 << 16;
    base.insnsPerCore = 3'000;
    const auto serial =
        bench::runSuite(StripingMode::SameBank, RasTraffic::None,
                        base.insnsPerCore, /*verbose=*/false, base);
    const auto parallel =
        bench::runSuiteParallel(StripingMode::SameBank, RasTraffic::None,
                                base.insnsPerCore, 4, base);
    ASSERT_EQ(serial.size(), parallel.size());
    for (const auto &[name, r] : serial)
        EXPECT_TRUE(bench::identicalResults(r, parallel.at(name)))
            << name;
}

TEST(ThreadedSmoke, ParallelMonteCarloMatchesSerial)
{
    // End-to-end: sharded trials over per-worker scheme clones must
    // reproduce the serial result bit for bit. Under TSan this also
    // proves the clones share no mutable state with the original.
    SystemConfig cfg;
    cfg.tsvDeviceFit = 1430.0;
    MonteCarlo mc(cfg);
    auto scheme = makeCitadel();
    const McResult serial = mc.run(*scheme, 400, 21, 1);
    const McResult parallel = mc.run(*scheme, 400, 21, 4);
    EXPECT_EQ(serial.failures, parallel.failures);
    EXPECT_EQ(serial.failuresByYear, parallel.failuresByYear);
    EXPECT_EQ(serial.failuresByClass, parallel.failuresByClass);
    EXPECT_DOUBLE_EQ(serial.meanFaultsPerTrial,
                     parallel.meanFaultsPerTrial);
}

} // namespace
} // namespace citadel
