/**
 * @file
 * Tests for the LLC model: LRU behavior, dirty eviction reporting, and
 * parity-line bookkeeping.
 */

#include <gtest/gtest.h>

#include "sim/llc.h"

namespace citadel {
namespace {

TEST(Llc, GeometryChecks)
{
    Llc c(8ull << 20, 8);
    EXPECT_EQ(c.sets(), (8ull << 20) / 64 / 8);
    EXPECT_DEATH(Llc bad(100, 8), "bad geometry");
}

TEST(Llc, FillAndEvictLru)
{
    // 2 sets x 2 ways; addresses with the same parity share a set.
    Llc c(4 * 64, 2);
    ASSERT_EQ(c.sets(), 2u);

    EXPECT_FALSE(c.fill(LineAddr{0}, false, false).valid);
    EXPECT_FALSE(c.fill(LineAddr{2}, false, false).valid);
    // Set 0 is full {0, 2}; filling 4 evicts the LRU (0).
    const auto v = c.fill(LineAddr{4}, false, false);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.addr, LineAddr{0});
    EXPECT_FALSE(v.dirty);
}

TEST(Llc, TouchUpdatesLru)
{
    Llc c(4 * 64, 2);
    c.fill(LineAddr{0}, false, true);
    c.fill(LineAddr{2}, false, false);
    // Touch 0 via a parity probe; now 2 is LRU.
    EXPECT_TRUE(c.probeParity(LineAddr{0}));
    const auto v = c.fill(LineAddr{4}, false, false);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.addr, LineAddr{2});
}

TEST(Llc, DirtyEvictionReported)
{
    Llc c(4 * 64, 2);
    c.fill(LineAddr{0}, true, false);
    c.fill(LineAddr{2}, false, false);
    const auto v = c.fill(LineAddr{4}, false, false);
    ASSERT_TRUE(v.valid);
    EXPECT_TRUE(v.dirty);
    EXPECT_FALSE(v.parity);
    EXPECT_EQ(c.stats().dirtyDataEvictions, 1u);
}

TEST(Llc, ParityProbeMissThenHit)
{
    Llc c(4 * 64, 2);
    EXPECT_FALSE(c.probeParity(LineAddr{6}));
    c.fill(LineAddr{6}, true, true);
    EXPECT_TRUE(c.probeParity(LineAddr{6}));
    EXPECT_EQ(c.stats().parityProbes, 2u);
    EXPECT_EQ(c.stats().parityHits, 1u);
    EXPECT_DOUBLE_EQ(c.stats().parityHitRate(), 0.5);
}

TEST(Llc, ParityEvictionTagged)
{
    Llc c(4 * 64, 2);
    c.fill(LineAddr{0}, true, true); // dirty parity line
    c.fill(LineAddr{2}, false, false);
    const auto v = c.fill(LineAddr{4}, false, false);
    ASSERT_TRUE(v.valid);
    EXPECT_TRUE(v.parity);
    EXPECT_TRUE(v.dirty);
    EXPECT_EQ(c.stats().dirtyParityEvictions, 1u);
}

TEST(Llc, RefillOfResidentLineNoEviction)
{
    Llc c(4 * 64, 2);
    c.fill(LineAddr{0}, false, false);
    const auto v = c.fill(LineAddr{0}, true, false);
    EXPECT_FALSE(v.valid);
    // The refill merged dirtiness.
    c.fill(LineAddr{2}, false, false);
    const auto v2 = c.fill(LineAddr{4}, false, false);
    ASSERT_TRUE(v2.valid);
    EXPECT_EQ(v2.addr, LineAddr{0});
    EXPECT_TRUE(v2.dirty);
}

TEST(Llc, StatsCountFills)
{
    Llc c(8 * 64, 2);
    c.fill(LineAddr{0}, false, false);
    c.fill(LineAddr{1}, false, true);
    EXPECT_EQ(c.stats().dataFills, 1u);
    EXPECT_EQ(c.stats().parityFills, 1u);
}

TEST(Llc, EmptyStatsZeroHitRate)
{
    Llc c(8 * 64, 2);
    EXPECT_DOUBLE_EQ(c.stats().parityHitRate(), 0.0);
}

} // namespace
} // namespace citadel
