/**
 * @file
 * Tests for the Monte Carlo engine: scrub semantics, determinism,
 * year-by-year accumulation, and sanity of failure probabilities
 * against closed-form expectations.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "citadel/citadel.h"
#include "fault_builders.h"
#include "faults/monte_carlo.h"

namespace citadel {
namespace {

using namespace testing_helpers;

class McTest : public ::testing::Test
{
  protected:
    SystemConfig cfg_;
};

TEST_F(McTest, DeterministicForSeed)
{
    MonteCarlo mc(cfg_);
    NoProtection none;
    const McResult a = mc.run(none, 2000, 99);
    const McResult b = mc.run(none, 2000, 99);
    EXPECT_EQ(a.failures, b.failures);
    EXPECT_EQ(a.failuresByYear, b.failuresByYear);
}

TEST_F(McTest, SeedChangesOutcome)
{
    MonteCarlo mc(cfg_);
    NoProtection none;
    const McResult a = mc.run(none, 2000, 1);
    const McResult b = mc.run(none, 2000, 2);
    EXPECT_NE(a.failures, b.failures);
}

TEST_F(McTest, NoProtectionMatchesClosedForm)
{
    // P(fail) = 1 - exp(-rate * lifetime * dies): any fault is fatal.
    MonteCarlo mc(cfg_);
    NoProtection none;
    const McResult r = mc.run(none, 20000, 5);
    const double dies = cfg_.geom.stacks * (cfg_.geom.channelsPerStack + 1);
    const double lambda =
        fitToPerHour(cfg_.rates.totalFit()) * cfg_.lifetimeHours * dies;
    const double expect = 1.0 - std::exp(-lambda);
    EXPECT_NEAR(r.probFail().estimate, expect, 0.01);
}

TEST_F(McTest, FailuresByYearMonotonic)
{
    MonteCarlo mc(cfg_);
    NoProtection none;
    const McResult r = mc.run(none, 5000, 7);
    ASSERT_EQ(r.failuresByYear.size(), 7u);
    for (std::size_t y = 1; y < r.failuresByYear.size(); ++y)
        EXPECT_LE(r.failuresByYear[y - 1], r.failuresByYear[y]);
    EXPECT_EQ(r.failuresByYear.back(), r.failures);
    EXPECT_DOUBLE_EQ(r.probFailByYear(7).estimate,
                     r.probFail().estimate);
}

TEST_F(McTest, ProbFailByYearRangeChecked)
{
    MonteCarlo mc(cfg_);
    NoProtection none;
    const McResult r = mc.run(none, 100, 7);
    EXPECT_DEATH(r.probFailByYear(0), "out of range");
    EXPECT_DEATH(r.probFailByYear(8), "out of range");
}

TEST_F(McTest, TransientsClearAtScrubBoundary)
{
    MonteCarlo mc(cfg_);
    // Two transient bank faults in different scrub windows must not
    // interact under 3DP; in the same window they are fatal.
    MultiDimParityScheme scheme(3);

    Fault a = bankFault(0, 1, 2);
    a.transient = true;
    a.timeHours = 1.0;
    Fault b = bankFault(0, 2, 5);
    b.transient = true;

    b.timeHours = 2.0; // same 12h window
    EXPECT_GE(mc.runTrial(scheme, {a, b}), 0.0);

    b.timeHours = 30.0; // two scrub boundaries later
    EXPECT_LT(mc.runTrial(scheme, {a, b}), 0.0);
}

TEST_F(McTest, PermanentsPersistWithoutSparing)
{
    MonteCarlo mc(cfg_);
    MultiDimParityScheme scheme(3);
    Fault a = bankFault(0, 1, 2); // permanent
    a.timeHours = 1.0;
    Fault b = bankFault(0, 2, 5);
    b.timeHours = 10000.0; // months later
    EXPECT_GE(mc.runTrial(scheme, {a, b}), 0.0);
}

TEST_F(McTest, DdsSparesPermanentsBetweenWindows)
{
    MonteCarlo mc(cfg_);
    DdsScheme scheme(std::make_unique<MultiDimParityScheme>(3));
    Fault a = bankFault(0, 1, 2);
    a.timeHours = 1.0;
    Fault b = bankFault(0, 2, 5);
    b.timeHours = 10000.0;
    EXPECT_LT(mc.runTrial(scheme, {a, b}), 0.0);

    // Within one window DDS has not yet run: still fatal.
    b.timeHours = 2.0;
    EXPECT_GE(mc.runTrial(scheme, {a, b}), 0.0);
}

TEST_F(McTest, TsvSwapAbsorbsBeforeEvaluation)
{
    MonteCarlo mc(cfg_);
    TsvSwapScheme scheme(std::make_unique<MultiDimParityScheme>(3));
    Fault t = dataTsvFault(0, 1, 7);
    t.timeHours = 5.0;
    EXPECT_LT(mc.runTrial(scheme, {t}), 0.0);

    MultiDimParityScheme bare(3);
    EXPECT_GE(mc.runTrial(bare, {t}), 0.0);
}

TEST_F(McTest, FirstFailureTimeIsReported)
{
    MonteCarlo mc(cfg_);
    NoProtection none;
    Fault a = bitFault(0, 1, 2, 3, 4, 5);
    a.timeHours = 777.0;
    const double t = mc.runTrial(none, {a});
    EXPECT_DOUBLE_EQ(t, 777.0);
}

TEST_F(McTest, MeanFaultsPerTrialReported)
{
    MonteCarlo mc(cfg_);
    NoProtection none;
    const McResult r = mc.run(none, 3000, 11);
    const double dies = cfg_.geom.stacks * (cfg_.geom.channelsPerStack + 1);
    const double expect =
        fitToPerHour(cfg_.rates.totalFit()) * cfg_.lifetimeHours * dies;
    EXPECT_NEAR(r.meanFaultsPerTrial, expect, 0.05 * expect + 0.02);
}

TEST_F(McTest, FailureAttributionRecorded)
{
    MonteCarlo mc(cfg_);
    NoProtection none;
    const McResult r = mc.run(none, 3000, 23);
    u64 attributed = 0;
    for (const auto &[cls, count] : r.failuresByClass) {
        (void)cls;
        attributed += count;
    }
    EXPECT_EQ(attributed, r.failures);
    // Bit faults dominate the Table I rates, so they dominate the
    // attribution for a scheme where any fault is fatal.
    ASSERT_TRUE(r.failuresByClass.count(FaultClass::Bit));
    EXPECT_GT(r.failuresByClass.at(FaultClass::Bit), r.failures / 3);
}

TEST_F(McTest, TriggerClassReportedByTrial)
{
    MonteCarlo mc(cfg_);
    NoProtection none;
    Fault a = bankFault(0, 1, 2);
    a.timeHours = 5.0;
    FaultClass trigger = FaultClass::Bit;
    EXPECT_GE(mc.runTrial(none, {a}, &trigger), 0.0);
    EXPECT_EQ(trigger, FaultClass::Bank);
}

TEST_F(McTest, SchemeOrderingMatchesPaperAtSystemLevel)
{
    // Smoke-level ordering on modest trial counts (the full comparison
    // is bench/fig18): Citadel <= 3DP <= Same-Bank SSC failure prob.
    cfg_.tsvDeviceFit = 0.0;
    MonteCarlo mc(cfg_);
    const u64 trials = 4000;

    auto citadel_scheme = makeCitadel();
    auto parity = makeParityOnly(3);
    auto same_bank = makeSymbolBaseline(StripingMode::SameBank);

    const double p_cit =
        mc.run(*citadel_scheme, trials, 3).probFail().estimate;
    const double p_3dp = mc.run(*parity, trials, 3).probFail().estimate;
    const double p_sb = mc.run(*same_bank, trials, 3).probFail().estimate;

    EXPECT_LE(p_cit, p_3dp + 1e-9);
    EXPECT_LT(p_3dp, p_sb);
    EXPECT_GT(p_sb, 0.05); // Same-Bank SSC fails on any large fault
}

} // namespace
} // namespace citadel
