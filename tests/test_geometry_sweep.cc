/**
 * @file
 * Parameterized sweeps: core invariants must hold on every supported
 * stack organization (HBM-like baseline, HMC-like, Tezzaron-like and
 * the tiny test geometry).
 */

#include <gtest/gtest.h>

#include "citadel/three_d_parity.h"
#include "faults/injector.h"
#include "stack/address.h"
#include "stack/tsv.h"

namespace citadel {
namespace {

class GeometrySweep : public ::testing::TestWithParam<int>
{
  protected:
    StackGeometry
    geom() const
    {
        switch (GetParam()) {
          case 0: return StackGeometry::hbm();
          case 1: return StackGeometry::hmcLike();
          case 2: return StackGeometry::tezzaronLike();
          default: return StackGeometry::tiny();
        }
    }
};

TEST_P(GeometrySweep, ValidatesAndHasConsistentCapacity)
{
    StackGeometry g = geom();
    g.validate();
    EXPECT_EQ(g.bytesPerBank() * g.banksPerChannel, g.bytesPerChannel());
    EXPECT_EQ(g.bytesPerChannel() * g.channelsPerStack, g.bytesPerStack());
    EXPECT_EQ(g.totalLines() * g.lineBytes, g.totalBytes());
    EXPECT_GE(g.burstLength(), 1u);
}

TEST_P(GeometrySweep, AddressRoundTrip)
{
    const StackGeometry g = geom();
    AddressMap map(g);
    const u64 total = g.totalLines();
    Rng rng(static_cast<u64>(5 + GetParam()));
    for (int i = 0; i < 2000; ++i) {
        const LineAddr line{rng.below(total)};
        EXPECT_EQ(map.coordToLine(map.lineToCoord(line)), line);
    }
}

TEST_P(GeometrySweep, StripingFanoutCoversUnits)
{
    const StackGeometry g = geom();
    AddressMap map(g);
    const LineCoord c = map.lineToCoord(LineAddr{g.totalLines() / 3});
    EXPECT_EQ(map.subRequests(c, StripingMode::AcrossBanks).size(),
              g.banksPerChannel);
    EXPECT_EQ(map.subRequests(c, StripingMode::AcrossChannels).size(),
              g.channelsPerStack);
}

TEST_P(GeometrySweep, TsvMapHandlesGeometry)
{
    const StackGeometry g = geom();
    TsvMap tsv(g);
    u32 v = 0;
    u32 m = 0;
    tsv.dataTsvBitPattern(TsvLane{g.dataTsvsPerChannel - 1}, v, m);
    DimSpec d = DimSpec::masked(v, m);
    u32 hits = 0;
    for (u32 b = 0; b < g.bitsPerLine(); ++b)
        hits += d.matches(b);
    EXPECT_EQ(hits, g.burstLength());
    EXPECT_EQ(tsv.addrTsvEffect(TsvLane{g.addrTsvsPerChannel - 1}),
              AtsvEffect::WholeChannel);
}

TEST_P(GeometrySweep, InjectorShapesHold)
{
    SystemConfig cfg;
    cfg.geom = geom();
    cfg.subArrayRows = std::min<u32>(cfg.geom.rowsPerBank, 16);
    FaultInjector inj(cfg);
    Rng rng(static_cast<u64>(17 + GetParam()));
    const Fault bank = inj.makeFault(rng, FaultClass::Bank, StackId{0},
                                     ChannelId{1}, false, 0.0);
    EXPECT_TRUE(bank.singleBank(cfg.geom));
    const Fault tsvf = inj.makeTsvFault(rng, StackId{0}, 0.0);
    EXPECT_TRUE(tsvf.fromTsv);
}

TEST_P(GeometrySweep, SingleFaultsCorrectableUnder3DP)
{
    SystemConfig cfg;
    cfg.geom = geom();
    cfg.subArrayRows = std::min<u32>(cfg.geom.rowsPerBank, 16);
    FaultInjector inj(cfg);
    MultiDimParityScheme scheme(3);
    scheme.reset(cfg);
    Rng rng(static_cast<u64>(29 + GetParam()));
    for (FaultClass cls : {FaultClass::Bit, FaultClass::Word,
                           FaultClass::Column, FaultClass::Row,
                           FaultClass::Bank}) {
        const Fault f = inj.makeFault(rng, cls, StackId{0}, ChannelId{1}, false, 0.0);
        EXPECT_FALSE(scheme.uncorrectable({f})) << faultClassName(cls);
    }
}

INSTANTIATE_TEST_SUITE_P(AllOrganizations, GeometrySweep,
                         ::testing::Values(0, 1, 2, 3));

} // namespace
} // namespace citadel
