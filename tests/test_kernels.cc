/**
 * @file
 * Kernel-equivalence property suite (DESIGN.md section 14): every
 * dispatched implementation of the three hot kernels — xorFold,
 * xorFoldN, CRC-32 bulk update — must be bit-identical to its scalar
 * proof over random lengths, all byte misalignments, multi-source
 * counts, and mid-stream state splits. The dispatch layer itself is
 * tested too: forced modes resolve to the expected paths, the epoch
 * invalidates cached pointers, and every mode produces the same bytes.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/kernels.h"
#include "common/rng.h"
#include "common/xor_fold.h"
#include "ecc/crc32.h"

namespace citadel {
namespace {

std::vector<u8>
randomBytes(Rng &rng, std::size_t n)
{
    std::vector<u8> v(n);
    for (auto &b : v)
        b = static_cast<u8>(rng.next());
    return v;
}

/** Restores the dispatch mode on scope exit so tests cannot leak a
 *  forced mode into later tests in the same process. */
class KernelModeGuard
{
  public:
    KernelModeGuard() : saved_(activeKernelMode()) {}
    ~KernelModeGuard() { setKernelMode(saved_); }

  private:
    KernelMode saved_;
};

// The interesting lengths around every internal boundary: empty, the
// sub-u64 tail, the u64/32-byte/64-byte lane splits, and multi-lane
// runs well past the unrolled main loop.
const std::size_t kLengths[] = {0,  1,  7,   8,   9,   31,  32,  33,
                                63, 64, 65,  96,  127, 128, 129, 200,
                                255, 256, 257, 511, 512, 1000};

TEST(Kernels, XorFoldVectorMatchesScalarAcrossLengths)
{
    Rng rng(1);
    for (std::size_t n = 0; n <= 300; ++n) {
        const auto src = randomBytes(rng, n);
        auto a = randomBytes(rng, n);
        auto b = a;
        xorFoldScalar(a.data(), src.data(), n);
        xorFoldVector(b.data(), src.data(), n);
        ASSERT_EQ(a, b) << "length " << n;
    }
}

TEST(Kernels, XorFoldVectorAtUnalignedOffsets)
{
    Rng rng(2);
    const std::size_t kLen = 200; // crosses the 64-byte unrolled loop
    const auto src_buf = randomBytes(rng, kLen + 8);
    for (std::size_t doff = 0; doff < 8; ++doff)
        for (std::size_t soff = 0; soff < 8; ++soff) {
            auto a = randomBytes(rng, kLen + 8);
            auto b = a;
            xorFoldScalar(a.data() + doff, src_buf.data() + soff, kLen);
            xorFoldVector(b.data() + doff, src_buf.data() + soff, kLen);
            ASSERT_EQ(a, b) << "dst+" << doff << " src+" << soff;
        }
}

TEST(Kernels, XorFoldNMatchesSequentialScalarFolds)
{
    Rng rng(3);
    for (std::size_t k = 2; k <= 12; ++k)
        for (const std::size_t n : kLengths) {
            std::vector<std::vector<u8>> lines;
            std::vector<const u8 *> srcs;
            for (std::size_t i = 0; i < k; ++i) {
                lines.push_back(randomBytes(rng, n));
                srcs.push_back(lines.back().data());
            }
            auto want = randomBytes(rng, n);
            auto got_scalar = want;
            auto got_vector = want;
            for (const auto &line : lines)
                xorFoldScalar(want.data(), line.data(), n);
            xorFoldNScalar(got_scalar.data(), srcs.data(), k, n);
            xorFoldNVector(got_vector.data(), srcs.data(), k, n);
            ASSERT_EQ(want, got_scalar) << "k=" << k << " n=" << n;
            ASSERT_EQ(want, got_vector) << "k=" << k << " n=" << n;
        }
}

TEST(Kernels, XorFoldNAtUnalignedOffsets)
{
    Rng rng(4);
    const std::size_t kLen = 200;
    const std::size_t k = 5;
    std::vector<std::vector<u8>> lines;
    for (std::size_t i = 0; i < k; ++i)
        lines.push_back(randomBytes(rng, kLen + 8));
    for (std::size_t doff = 0; doff < 8; ++doff)
        for (std::size_t soff = 0; soff < 8; ++soff) {
            std::vector<const u8 *> srcs;
            for (const auto &line : lines)
                srcs.push_back(line.data() + soff);
            auto want = randomBytes(rng, kLen + 8);
            auto got = want;
            for (const u8 *s : srcs)
                xorFoldScalar(want.data() + doff, s, kLen);
            xorFoldNVector(got.data() + doff, srcs.data(), k, kLen);
            ASSERT_EQ(want, got) << "dst+" << doff << " src+" << soff;
        }
}

TEST(Kernels, DispatchResolvesForcedModes)
{
    KernelModeGuard guard;
    const u64 epoch0 = kernelModeEpoch();

    setKernelMode(KernelMode::Scalar);
    EXPECT_EQ(activeKernelMode(), KernelMode::Scalar);
    EXPECT_STREQ(xorKernelOps().path, "scalar-u64");
    EXPECT_GT(kernelModeEpoch(), epoch0);

    setKernelMode(KernelMode::Vector);
    EXPECT_EQ(activeKernelMode(), KernelMode::Vector);
    EXPECT_TRUE(std::string_view(xorKernelOps().path)
                    .starts_with("vector32"));

    setKernelMode(KernelMode::Auto);
    EXPECT_TRUE(std::string_view(xorKernelOps().path)
                    .starts_with("vector32"));
}

TEST(Kernels, EveryDispatchModeProducesIdenticalBytes)
{
    KernelModeGuard guard;
    Rng rng(5);
    const std::size_t n = 257;
    const std::size_t k = 7;
    const auto src = randomBytes(rng, n);
    std::vector<std::vector<u8>> lines;
    std::vector<const u8 *> srcs;
    for (std::size_t i = 0; i < k; ++i) {
        lines.push_back(randomBytes(rng, n));
        srcs.push_back(lines.back().data());
    }
    const auto init = randomBytes(rng, n);

    std::vector<u8> fold_ref, foldn_ref;
    u32 crc_ref = 0;
    for (const KernelMode mode :
         {KernelMode::Scalar, KernelMode::Vector, KernelMode::Auto}) {
        setKernelMode(mode);
        auto fold_out = init;
        xorFold(fold_out.data(), src.data(), n); // dispatched entry
        auto foldn_out = init;
        xorFoldN(foldn_out.data(), srcs.data(), k, n);
        const u32 crc_out = Crc32::compute(src);
        if (mode == KernelMode::Scalar) {
            fold_ref = fold_out;
            foldn_ref = foldn_out;
            crc_ref = crc_out;
        } else {
            EXPECT_EQ(fold_out, fold_ref) << kernelModeName(mode);
            EXPECT_EQ(foldn_out, foldn_ref) << kernelModeName(mode);
            EXPECT_EQ(crc_out, crc_ref) << kernelModeName(mode);
        }
    }
}

TEST(Kernels, ParseKernelModeExactLowercaseOnly)
{
    EXPECT_EQ(parseKernelMode("scalar"), KernelMode::Scalar);
    EXPECT_EQ(parseKernelMode("vector"), KernelMode::Vector);
    EXPECT_EQ(parseKernelMode("auto"), KernelMode::Auto);
    for (const char *bad : {"", "Scalar", "VECTOR", "auto ", " auto",
                            "simd", "avx2", "scalar,vector", "1"})
        EXPECT_FALSE(parseKernelMode(bad).has_value()) << bad;
}

TEST(Kernels, Crc32HwMatchesSlice8AcrossLengths)
{
    Rng rng(6);
    // 0..300 covers the <64-byte slice8 fallback, the exact fold-by-4
    // threshold, and every 16-byte fold-by-1 tail split around it.
    for (std::size_t n = 0; n <= 300; ++n) {
        const auto buf = randomBytes(rng, n);
        const u32 slice8 = Crc32::updateSlice8(Crc32::begin(), buf);
        const u32 hw = Crc32::updateHw(Crc32::begin(), buf);
        ASSERT_EQ(hw, slice8) << "length " << n;
        ASSERT_EQ(Crc32::finish(slice8), Crc32::referenceCompute(buf))
            << "length " << n;
    }
}

TEST(Kernels, Crc32HwAtUnalignedOffsets)
{
    Rng rng(7);
    const std::size_t kLen = 257;
    const auto buf = randomBytes(rng, kLen + 8);
    for (std::size_t off = 0; off < 8; ++off) {
        const std::span<const u8> view(buf.data() + off, kLen);
        ASSERT_EQ(Crc32::updateHw(Crc32::begin(), view),
                  Crc32::updateSlice8(Crc32::begin(), view))
            << "offset " << off;
    }
}

TEST(Kernels, Crc32HwMidStateSplits)
{
    Rng rng(8);
    const auto buf = randomBytes(rng, 1000);
    const u32 whole = Crc32::updateSlice8(Crc32::begin(), buf);
    for (const std::size_t split : {1u, 63u, 64u, 65u, 128u, 500u, 999u}) {
        const std::span<const u8> head(buf.data(), split);
        const std::span<const u8> tail(buf.data() + split,
                                       buf.size() - split);
        // hw-then-hw, hw-then-slice8, slice8-then-hw: any interleaving
        // of the two implementations must agree, since a batch can mix
        // dispatch paths across threads.
        EXPECT_EQ(Crc32::updateHw(Crc32::updateHw(Crc32::begin(), head),
                                  tail),
                  whole)
            << split;
        EXPECT_EQ(Crc32::updateSlice8(
                      Crc32::updateHw(Crc32::begin(), head), tail),
                  whole)
            << split;
        EXPECT_EQ(Crc32::updateHw(
                      Crc32::updateSlice8(Crc32::begin(), head), tail),
                  whole)
            << split;
    }
}

TEST(Kernels, Crc32DispatchFollowsMode)
{
    KernelModeGuard guard;
    Rng rng(9);
    const auto buf = randomBytes(rng, 500);

    setKernelMode(KernelMode::Scalar);
    EXPECT_STREQ(Crc32::activePathName(), "slice8");
    const u32 scalar_crc = Crc32::update(Crc32::begin(), buf);

    setKernelMode(KernelMode::Auto);
    if (Crc32::hwAvailable())
        EXPECT_STRNE(Crc32::activePathName(), "slice8");
    else
        EXPECT_STREQ(Crc32::activePathName(), "slice8");
    EXPECT_EQ(Crc32::update(Crc32::begin(), buf), scalar_crc);
}

} // namespace
} // namespace citadel
