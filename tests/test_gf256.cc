/**
 * @file
 * Tests for GF(2^8) arithmetic: field axioms and table consistency.
 */

#include <gtest/gtest.h>

#include "ecc/gf256.h"

namespace citadel {
namespace {

TEST(Gf256, AddIsXor)
{
    EXPECT_EQ(Gf256::add(0x53, 0xCA), 0x53 ^ 0xCA);
    EXPECT_EQ(Gf256::add(7, 7), 0);
}

TEST(Gf256, MulIdentityAndZero)
{
    for (int a = 0; a < 256; ++a) {
        EXPECT_EQ(Gf256::mul(static_cast<u8>(a), 1), a);
        EXPECT_EQ(Gf256::mul(1, static_cast<u8>(a)), a);
        EXPECT_EQ(Gf256::mul(static_cast<u8>(a), 0), 0);
    }
}

TEST(Gf256, MulCommutative)
{
    for (int a = 1; a < 256; a += 7)
        for (int b = 1; b < 256; b += 11)
            EXPECT_EQ(Gf256::mul(static_cast<u8>(a), static_cast<u8>(b)),
                      Gf256::mul(static_cast<u8>(b), static_cast<u8>(a)));
}

TEST(Gf256, MulAssociative)
{
    for (int a = 1; a < 256; a += 31)
        for (int b = 1; b < 256; b += 37)
            for (int c = 1; c < 256; c += 41) {
                const u8 ab_c = Gf256::mul(
                    Gf256::mul(static_cast<u8>(a), static_cast<u8>(b)),
                    static_cast<u8>(c));
                const u8 a_bc = Gf256::mul(
                    static_cast<u8>(a),
                    Gf256::mul(static_cast<u8>(b), static_cast<u8>(c)));
                EXPECT_EQ(ab_c, a_bc);
            }
}

TEST(Gf256, DistributesOverAdd)
{
    for (int a = 1; a < 256; a += 13)
        for (int b = 0; b < 256; b += 17)
            for (int c = 0; c < 256; c += 19) {
                const u8 lhs = Gf256::mul(
                    static_cast<u8>(a),
                    Gf256::add(static_cast<u8>(b), static_cast<u8>(c)));
                const u8 rhs = Gf256::add(
                    Gf256::mul(static_cast<u8>(a), static_cast<u8>(b)),
                    Gf256::mul(static_cast<u8>(a), static_cast<u8>(c)));
                EXPECT_EQ(lhs, rhs);
            }
}

TEST(Gf256, EveryNonZeroHasInverse)
{
    for (int a = 1; a < 256; ++a) {
        const u8 inv = Gf256::inv(static_cast<u8>(a));
        EXPECT_EQ(Gf256::mul(static_cast<u8>(a), inv), 1) << "a=" << a;
    }
}

TEST(Gf256, DivIsMulByInverse)
{
    for (int a = 0; a < 256; a += 5)
        for (int b = 1; b < 256; b += 9) {
            const u8 q = Gf256::div(static_cast<u8>(a),
                                    static_cast<u8>(b));
            EXPECT_EQ(Gf256::mul(q, static_cast<u8>(b)), a);
        }
}

TEST(Gf256, DivByZeroDies)
{
    EXPECT_DEATH(Gf256::div(5, 0), "div by zero");
    EXPECT_DEATH(Gf256::inv(0), "inv of zero");
}

TEST(Gf256, AlphaGeneratesWholeField)
{
    // alpha = 2 generates all 255 non-zero elements.
    bool seen[256] = {false};
    for (u32 e = 0; e < 255; ++e) {
        const u8 v = Gf256::alphaPow(e);
        EXPECT_NE(v, 0);
        EXPECT_FALSE(seen[v]) << "cycle shorter than 255 at e=" << e;
        seen[v] = true;
    }
    EXPECT_EQ(Gf256::alphaPow(255), Gf256::alphaPow(0));
}

TEST(Gf256, LogInvertsAlphaPow)
{
    for (u32 e = 0; e < 255; ++e)
        EXPECT_EQ(Gf256::log(Gf256::alphaPow(e)), e);
}

TEST(Gf256, PowMatchesRepeatedMul)
{
    for (int base = 1; base < 256; base += 23) {
        u8 acc = 1;
        for (u32 e = 0; e < 16; ++e) {
            EXPECT_EQ(Gf256::pow(static_cast<u8>(base), e), acc);
            acc = Gf256::mul(acc, static_cast<u8>(base));
        }
    }
    EXPECT_EQ(Gf256::pow(0, 0), 1);
    EXPECT_EQ(Gf256::pow(0, 5), 0);
}

} // namespace
} // namespace citadel
