/**
 * @file
 * Tests for the DRAM timing model: latency composition, row-buffer
 * behavior, striping fan-out, bank conflicts and write queuing.
 */

#include <gtest/gtest.h>

#include "sim/memory_system.h"

namespace citadel {
namespace {

class MemTest : public ::testing::Test
{
  protected:
    SimConfig cfg_;

    /** Run ticks until the read with `token` completes; returns the
     *  completion cycle. */
    u64
    runUntilDone(MemorySystem &mem, u64 token, u64 start = 0,
                 u64 limit = 100000)
    {
        for (u64 cycle = start; cycle < limit; ++cycle) {
            mem.tick(cycle);
            for (u64 t : mem.drainCompletedReads())
                if (t == token)
                    return cycle;
        }
        ADD_FAILURE() << "request did not complete";
        return limit;
    }
};

TEST_F(MemTest, ColdReadLatencyIsActPlusCas)
{
    MemorySystem mem(cfg_);
    const u64 token = mem.issueRead(LineAddr{0}, 0);
    const u64 done = runUntilDone(mem, token);
    // tRCD + tCAS + tBURST = 9 + 9 + 1 = 19 for a cold bank.
    EXPECT_EQ(done, 19u);
    EXPECT_EQ(mem.counters().activates, 1u);
    EXPECT_EQ(mem.counters().rowMisses, 1u);
}

TEST_F(MemTest, RowHitIsFasterThanRowMiss)
{
    MemorySystem mem(cfg_);
    const u64 t1 = mem.issueRead(LineAddr{0}, 0);
    const u64 d1 = runUntilDone(mem, t1);
    // Line 1 is the next slot of the same open row.
    const u64 t2 = mem.issueRead(LineAddr{1}, d1 + 1);
    const u64 d2 = runUntilDone(mem, t2, d1 + 1);
    const u64 hit_latency = d2 - (d1 + 1);
    EXPECT_LT(hit_latency, 19u);
    EXPECT_EQ(mem.counters().activates, 1u);
    EXPECT_EQ(mem.counters().rowHits, 1u);
}

TEST_F(MemTest, RowConflictPaysPrecharge)
{
    MemorySystem mem(cfg_);
    AddressMap map(cfg_.geom);
    // Two lines in the same bank, different rows.
    LineCoord a = map.lineToCoord(LineAddr{0});
    LineCoord b = a;
    b.row = RowId{a.row.value() + 1};
    const u64 t1 = mem.issueRead(map.coordToLine(a), 0);
    const u64 d1 = runUntilDone(mem, t1);
    const u64 t2 = mem.issueRead(map.coordToLine(b), d1 + 1);
    const u64 d2 = runUntilDone(mem, t2, d1 + 1);
    // The second access must wait for tRAS before precharging.
    EXPECT_GT(d2 - (d1 + 1), 19u);
    EXPECT_EQ(mem.counters().activates, 2u);
}

TEST_F(MemTest, StripingFanoutCountsBursts)
{
    for (StripingMode mode :
         {StripingMode::SameBank, StripingMode::AcrossBanks,
          StripingMode::AcrossChannels}) {
        cfg_.striping = mode;
        MemorySystem mem(cfg_);
        AddressMap map(cfg_.geom);
        const u64 token = mem.issueRead(LineAddr{0}, 0);
        runUntilDone(mem, token);
        EXPECT_EQ(mem.counters().readBursts, map.fanout(mode))
            << stripingModeName(mode);
        // Total bytes moved are one line regardless of striping.
        EXPECT_EQ(mem.counters().bytesRead, cfg_.geom.lineBytes);
    }
}

TEST_F(MemTest, AcrossBanksActivatesEveryBank)
{
    cfg_.striping = StripingMode::AcrossBanks;
    MemorySystem mem(cfg_);
    const u64 token = mem.issueRead(LineAddr{0}, 0);
    runUntilDone(mem, token);
    EXPECT_EQ(mem.counters().activates, cfg_.geom.banksPerChannel);
}

TEST_F(MemTest, AcrossChannelsUsesOneBankPerChannel)
{
    cfg_.striping = StripingMode::AcrossChannels;
    MemorySystem mem(cfg_);
    const u64 token = mem.issueRead(LineAddr{0}, 0);
    const u64 done = runUntilDone(mem, token);
    EXPECT_EQ(mem.counters().activates, cfg_.geom.channelsPerStack);
    // Channel-parallel activation: latency close to a single access,
    // not 8x (the banks are in different channels).
    EXPECT_LT(done, 2 * 19u);
}

TEST_F(MemTest, AcrossBanksActivatesInLockstep)
{
    // The striped mapping issues one multi-bank activate: the line
    // completes at near single-access latency; the cost is 8x
    // activation energy, not tRRD-serialized latency (Section II-E).
    cfg_.striping = StripingMode::AcrossBanks;
    MemorySystem mem(cfg_);
    const u64 token = mem.issueRead(LineAddr{0}, 0);
    const u64 done = runUntilDone(mem, token);
    EXPECT_LE(done, 19u + cfg_.timing.tBURST);
    EXPECT_EQ(mem.counters().activates, cfg_.geom.banksPerChannel);
}

TEST_F(MemTest, AcrossBanksConflictsAcrossRequests)
{
    // Two across-banks lines at different rows of the same channel
    // collide on the whole bank set: the second must wait out the row
    // cycle -- the loss of bank-level parallelism (Section II-E).
    cfg_.striping = StripingMode::AcrossBanks;
    MemorySystem mem(cfg_);
    AddressMap map(cfg_.geom);
    LineCoord a = map.lineToCoord(LineAddr{0});
    LineCoord b = a;
    b.row = RowId{a.row.value() + 1};
    const u64 t1 = mem.issueRead(map.coordToLine(a), 0);
    const u64 t2 = mem.issueRead(map.coordToLine(b), 0);
    (void)t1;
    const u64 done = runUntilDone(mem, t2);
    EXPECT_GE(done, cfg_.timing.tRAS); // waited for the row cycle
}

TEST_F(MemTest, WritesAreAcceptedUpToCap)
{
    MemorySystem mem(cfg_);
    u32 accepted = 0;
    while (mem.canAcceptWrite(LineAddr{0}) && accepted < 1000) {
        mem.issueWrite(LineAddr{0}, 0);
        ++accepted;
    }
    EXPECT_EQ(accepted, cfg_.writeQueueCap);
}

TEST_F(MemTest, WritesDrainEventually)
{
    MemorySystem mem(cfg_);
    for (int i = 0; i < 8; ++i)
        mem.issueWrite(LineAddr{static_cast<u64>(i)}, 0);
    for (u64 cycle = 0; cycle < 10000 && mem.pending() > 0; ++cycle)
        mem.tick(cycle);
    EXPECT_EQ(mem.pending(), 0u);
    EXPECT_EQ(mem.counters().writeBursts, 8u);
    EXPECT_EQ(mem.counters().bytesWritten, 8u * cfg_.geom.lineBytes);
}

TEST_F(MemTest, ReadsPrioritizedOverWrites)
{
    MemorySystem mem(cfg_);
    // A few writes queued first, then a read: the read should not wait
    // for the whole write queue (it is picked first at low pressure).
    for (int i = 0; i < 4; ++i)
        mem.issueWrite(LineAddr{0}, 0);
    const u64 token = mem.issueRead(LineAddr{0}, 0);
    const u64 done = runUntilDone(mem, token);
    EXPECT_LE(done, 25u);
}

TEST_F(MemTest, IndependentChannelsProceedInParallel)
{
    MemorySystem mem(cfg_);
    // Lines 4 apart hit 8 different channels.
    std::vector<u64> tokens;
    for (u64 i = 0; i < 8; ++i)
        tokens.push_back(mem.issueRead(LineAddr{i * 4}, 0));
    u64 last = 0;
    std::size_t done_count = 0;
    for (u64 cycle = 0; cycle < 1000 && done_count < tokens.size();
         ++cycle) {
        mem.tick(cycle);
        for (u64 t : mem.drainCompletedReads()) {
            (void)t;
            ++done_count;
            last = cycle;
        }
    }
    ASSERT_EQ(done_count, 8u);
    EXPECT_EQ(last, 19u); // all in parallel, same latency
}

TEST_F(MemTest, PendingTracksQueueDepth)
{
    MemorySystem mem(cfg_);
    EXPECT_EQ(mem.pending(), 0u);
    mem.issueRead(LineAddr{0}, 0);
    EXPECT_EQ(mem.pending(), 1u);
    cfg_.striping = StripingMode::AcrossBanks;
    MemorySystem striped(cfg_);
    striped.issueRead(LineAddr{0}, 0);
    EXPECT_EQ(striped.pending(), 8u);
}

} // namespace
} // namespace citadel
