/**
 * @file
 * Tests for the sparing analyses behind Fig 17 and Table III.
 */

#include <gtest/gtest.h>

#include "fault_builders.h"
#include "faults/analysis.h"

namespace citadel {
namespace {

using namespace testing_helpers;

class AnalysisTest : public ::testing::Test
{
  protected:
    SystemConfig cfg_;
    SparingAnalysis ana_{cfg_};
};

TEST_F(AnalysisTest, RowsRequiredPerClass)
{
    EXPECT_EQ(ana_.rowsRequired(bitFault(0, 1, 2, 3, 4, 5)), 1u);
    EXPECT_EQ(ana_.rowsRequired(rowFault(0, 1, 2, 3)), 1u);
    EXPECT_EQ(ana_.rowsRequired(columnFault(0, 1, 2, 3)), 65536u);
    EXPECT_EQ(ana_.rowsRequired(bankFault(0, 1, 2)), 65536u);
}

TEST_F(AnalysisTest, UnionCountsDistinctRows)
{
    // Two faults in the same row count once.
    EXPECT_EQ(ana_.rowsRequiredForBank({bitFault(0, 1, 2, 10, 0, 0),
                                        wordFault(0, 1, 2, 10, 3, 1)}),
              1u);
    EXPECT_EQ(ana_.rowsRequiredForBank({rowFault(0, 1, 2, 10),
                                        rowFault(0, 1, 2, 11)}),
              2u);
}

TEST_F(AnalysisTest, SubArrayPlusRowInside)
{
    Fault sub = baseFault(FaultClass::SubArray, 0, 1);
    sub.bank = DimSpec::exact(2);
    const u32 full = (1u << 16) - 1;
    sub.row = DimSpec::masked(4096, full & ~4095u);

    // A row inside the sub-array adds nothing; outside adds one.
    EXPECT_EQ(ana_.rowsRequiredForBank({sub, rowFault(0, 1, 2, 5000)}),
              4096u);
    EXPECT_EQ(ana_.rowsRequiredForBank({sub, rowFault(0, 1, 2, 100)}),
              4097u);
}

TEST_F(AnalysisTest, BankFaultSaturates)
{
    EXPECT_EQ(ana_.rowsRequiredForBank({bankFault(0, 1, 2),
                                        rowFault(0, 1, 2, 5)}),
              65536u);
}

TEST_F(AnalysisTest, HistogramIsBimodal)
{
    // The paper's key observation (Fig 17): faulty banks need either
    // very few rows (<= 4) or thousands (sub-array / full bank).
    const SparingHistogram h = ana_.histogram(30000, 13);
    ASSERT_GT(h.totalFaultyBanks, 500u);

    const double small = h.fractionAtMost(4);
    const double large = h.fractionAtLeast(1000);
    EXPECT_NEAR(small + large, 1.0, 0.01); // nothing in between
    EXPECT_GT(small, 0.3);
    EXPECT_GT(large, 0.2);

    // Sub-array and full-bank peaks both present.
    EXPECT_GT(h.fraction(cfg_.subArrayRows), 0.03);
    EXPECT_GT(h.fraction(cfg_.geom.rowsPerBank), 0.15);
}

TEST_F(AnalysisTest, HistogramFractionsNormalize)
{
    const SparingHistogram h = ana_.histogram(5000, 17);
    double total = 0.0;
    for (const auto &[rows, count] : h.counts) {
        (void)rows;
        total += static_cast<double>(count);
    }
    EXPECT_DOUBLE_EQ(total, static_cast<double>(h.totalFaultyBanks));
    EXPECT_DOUBLE_EQ(h.fractionAtMost(h.counts.rbegin()->first), 1.0);
}

TEST_F(AnalysisTest, FailedBankDistributionMatchesTableIII)
{
    // Table III: 1 bank 66.98%, 2 banks 32.98%, 3+ 0.04%.
    // With independent per-die bank rates the distribution is dominated
    // by the single-failure case; allow generous tolerances at this
    // trial count (the bench reproduces it tightly).
    const FailedBankDistribution d = ana_.failedBanks(30000, 4, 19);
    ASSERT_GT(d.systemsWithFailedBank, 1000u);
    const double n = static_cast<double>(d.systemsWithFailedBank);
    const double p1 = static_cast<double>(d.one) / n;
    const double p2 = static_cast<double>(d.two) / n;
    const double p3 = static_cast<double>(d.threePlus) / n;
    EXPECT_GT(p1, 0.8); // overwhelmingly one failed bank
    EXPECT_LT(p2, 0.2);
    EXPECT_LT(p3, 0.01);
    EXPECT_NEAR(p1 + p2 + p3, 1.0, 1e-9);
}

TEST_F(AnalysisTest, EmptyHistogramSafe)
{
    SparingHistogram h;
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.0);
    EXPECT_DOUBLE_EQ(h.fractionAtMost(10), 0.0);
    EXPECT_DOUBLE_EQ(h.fractionAtLeast(10), 0.0);
}

} // namespace
} // namespace citadel
