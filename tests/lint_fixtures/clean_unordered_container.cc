// Clean counterpart: ordered map — iteration order is the key order,
// so the fold is reproducible on any run.
#include <cstdint>
#include <map>

std::map<std::uint64_t, std::uint64_t> kv;

std::uint64_t
fingerprint()
{
    std::uint64_t h = 1469598103934665603ull;
    for (const auto &[key, value] : kv)
        h = (h ^ key ^ value) * 1099511628211ull;
    return h;
}
