// Clean counterpart: seeds are counter-derived from the campaign
// seed, so trial t draws identically on any worker thread.
#include <cstdint>

std::uint64_t mix64(std::uint64_t x);

std::uint64_t
trialSeed(std::uint64_t campaign_seed, std::uint64_t trial)
{
    return mix64(campaign_seed ^ (trial + 1));
}
