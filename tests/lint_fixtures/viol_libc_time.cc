// Fixture: libc wall-clock/CPU-clock reads.
#include <ctime>

long
stampNow()
{
    return time(nullptr); // expect-lint: libc-time
}

long
cpuNow()
{
    return clock(); // expect-lint: libc-time
}
