// Fixture: hash-container iteration order is implementation-defined.
#include <cstdint>
#include <unordered_map>

std::unordered_map<std::uint64_t, std::uint64_t> kv; // expect-lint: unordered-container

std::uint64_t
fingerprint()
{
    std::uint64_t h = 1469598103934665603ull;
    for (const auto &[key, value] : kv)
        h = (h ^ key ^ value) * 1099511628211ull;
    return h;
}
