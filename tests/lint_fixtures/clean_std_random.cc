// Clean counterpart: the counter-derived stream idiom from
// src/common/rng.h — construction from a mixed seed, draws bounded
// with modulo/rejection, no <random> machinery.
#include <cstdint>

std::uint64_t mix64(std::uint64_t x);

struct Rng
{
    explicit Rng(std::uint64_t seed);
    std::uint64_t next();
};

int
sample(std::uint64_t campaign_seed, std::uint64_t trial)
{
    Rng rng(mix64(campaign_seed ^ (trial + 1)));
    return static_cast<int>(rng.next() % 6) + 1;
}
