// Clean counterpart: simulated layers take virtual time as a
// parameter; "lifetime(...)" and string mentions of time( must not
// trip the rule.
#include <cstdint>

std::uint64_t
cycleOf(std::uint64_t tick, std::uint64_t cycles_per_tick)
{
    return tick * cycles_per_tick;
}

double
lifetime(double hours)
{
    return hours;
}

const char *label = "elapsed time (virtual ticks)";
