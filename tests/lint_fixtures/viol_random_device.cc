// Fixture: std::random_device seeds differently every run.
#include <cstdint>

std::uint64_t
entropySeed()
{
    std::random_device rd; // expect-lint: random-device
    return rd;
}
