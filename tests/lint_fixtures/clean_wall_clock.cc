// Clean counterpart: durations computed from virtual ticks only.
#include <cstdint>

double
elapsedHours(std::uint64_t tick, double hours_per_tick)
{
    return static_cast<double>(tick) * hours_per_tick;
}
