// Fixture: unwrapping a typed id back to a raw integer outside the
// blessed mapper files silently re-enters raw-index arithmetic.
#include <cstdint>

struct BankId
{
    std::uint32_t value() const;
};

std::uint32_t
nextBank(BankId bank)
{
    return bank.value() + 1; // expect-lint: unwrap-outside-blessed
}
