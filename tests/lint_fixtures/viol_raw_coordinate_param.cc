// Fixture: raw integer coordinate parameters re-open the
// transposed-coordinate bug class the typed ids eliminated.
#include <cstdint>

using u32 = std::uint32_t;

u32
lineOf(u32 bank, u32 row) // expect-lint: raw-coordinate-param
{
    return bank * 4096 + row;
}
