// Fixture: <random> engines/distributions outside common/rng.h.
#include <random> // expect-lint: std-random

int
sample(unsigned seed)
{
    std::mt19937 gen(seed);                      // expect-lint: std-random
    std::uniform_int_distribution<int> d(1, 6); // expect-lint: std-random
    return d(gen);
}
