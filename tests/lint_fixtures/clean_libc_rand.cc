// Clean counterpart: an explicit per-stream generator object; no
// global state, and names like strand()/operand() must not trip the
// rand() rule.
#include <cstdint>

struct Rng
{
    std::uint64_t state;
    std::uint64_t next();
};

int
diceRoll(Rng &rng)
{
    return static_cast<int>(rng.next() % 6) + 1;
}

std::uint64_t
operand(Rng &rng)
{
    return rng.next();
}
