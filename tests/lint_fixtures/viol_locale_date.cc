// Fixture: locale/timezone-dependent date formatting.
#include <ctime>

void
stampReport(char *buf, std::size_t n, std::time_t t)
{
    std::tm *lt = localtime(&t);      // expect-lint: locale-date
    strftime(buf, n, "%Y-%m-%d", lt); // expect-lint: locale-date
}
