// Clean counterpart: report labels derived from virtual time as
// plain integer arithmetic — host locale and timezone never enter.
#include <cstdint>

std::uint64_t
simYearOf(double hours)
{
    return static_cast<std::uint64_t>(hours / (24.0 * 365.0));
}
