// Clean counterpart: key by stable index, not by address; pointer
// *values* (mapped type) are fine — only pointer keys order by
// allocator behavior.
#include <cstdint>
#include <map>

struct Server;

std::map<std::uint32_t, int> scoresByIndex;
std::map<std::uint32_t, Server *> serverByIndex;
