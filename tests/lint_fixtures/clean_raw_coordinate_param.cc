// Clean counterpart: typed ids at the API boundary; raw counts
// ("rows": how many, not which one) and lambda parameters are exempt
// by design.
#include <cstdint>

using u32 = std::uint32_t;

struct BankId;
struct RowId;

u32 lineOf(BankId bank, RowId row);

u32
capacity(u32 rows, u32 banks)
{
    return rows * banks;
}
