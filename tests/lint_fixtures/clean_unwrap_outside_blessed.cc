// Clean counterpart: stay in the typed domain; arithmetic on ids
// goes through their own operators, never through .value()/.idx().
#include <cstdint>

struct BankId
{
    BankId next() const;
};

BankId
nextBank(BankId bank)
{
    return bank.next();
}
