// Fixture: std::chrono clock reads differ every run.
#include <chrono>

double
elapsedSeconds(std::chrono::steady_clock::time_point t0) // expect-lint: wall-clock
{
    const auto now = std::chrono::steady_clock::now(); // expect-lint: wall-clock
    return std::chrono::duration<double>(now - t0).count();
}
