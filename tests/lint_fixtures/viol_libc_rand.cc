// Fixture: rand()/srand() is hidden global state.
#include <cstdlib>

int
diceRoll()
{
    srand(42);            // expect-lint: libc-rand
    return rand() % 6 + 1; // expect-lint: libc-rand
}
