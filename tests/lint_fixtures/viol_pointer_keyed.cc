// Fixture: pointer-keyed containers iterate in allocator order.
#include <map>
#include <set>

struct Server;

std::map<Server *, int> scores;    // expect-lint: pointer-keyed
std::set<const Server *> visited; // expect-lint: pointer-keyed
