file(REMOVE_RECURSE
  "CMakeFiles/striping_study.dir/striping_study.cpp.o"
  "CMakeFiles/striping_study.dir/striping_study.cpp.o.d"
  "striping_study"
  "striping_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/striping_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
