# Empty compiler generated dependencies file for striping_study.
# This may be replaced when dependencies are built.
