file(REMOVE_RECURSE
  "CMakeFiles/test_three_d_parity.dir/test_three_d_parity.cc.o"
  "CMakeFiles/test_three_d_parity.dir/test_three_d_parity.cc.o.d"
  "test_three_d_parity"
  "test_three_d_parity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_three_d_parity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
