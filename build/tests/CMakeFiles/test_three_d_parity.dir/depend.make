# Empty dependencies file for test_three_d_parity.
# This may be replaced when dependencies are built.
