file(REMOVE_RECURSE
  "CMakeFiles/test_fit_rates.dir/test_fit_rates.cc.o"
  "CMakeFiles/test_fit_rates.dir/test_fit_rates.cc.o.d"
  "test_fit_rates"
  "test_fit_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fit_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
