# Empty dependencies file for test_fit_rates.
# This may be replaced when dependencies are built.
