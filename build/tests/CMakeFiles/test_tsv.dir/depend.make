# Empty dependencies file for test_tsv.
# This may be replaced when dependencies are built.
