file(REMOVE_RECURSE
  "CMakeFiles/test_tsv.dir/test_tsv.cc.o"
  "CMakeFiles/test_tsv.dir/test_tsv.cc.o.d"
  "test_tsv"
  "test_tsv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tsv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
