# Empty compiler generated dependencies file for test_parity_engine.
# This may be replaced when dependencies are built.
