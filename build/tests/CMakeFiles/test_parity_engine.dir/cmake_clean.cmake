file(REMOVE_RECURSE
  "CMakeFiles/test_parity_engine.dir/test_parity_engine.cc.o"
  "CMakeFiles/test_parity_engine.dir/test_parity_engine.cc.o.d"
  "test_parity_engine"
  "test_parity_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parity_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
