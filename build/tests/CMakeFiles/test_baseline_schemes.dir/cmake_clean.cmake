file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_schemes.dir/test_baseline_schemes.cc.o"
  "CMakeFiles/test_baseline_schemes.dir/test_baseline_schemes.cc.o.d"
  "test_baseline_schemes"
  "test_baseline_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
