file(REMOVE_RECURSE
  "CMakeFiles/test_tsv_swap.dir/test_tsv_swap.cc.o"
  "CMakeFiles/test_tsv_swap.dir/test_tsv_swap.cc.o.d"
  "test_tsv_swap"
  "test_tsv_swap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tsv_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
