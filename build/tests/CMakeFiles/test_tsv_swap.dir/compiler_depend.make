# Empty compiler generated dependencies file for test_tsv_swap.
# This may be replaced when dependencies are built.
