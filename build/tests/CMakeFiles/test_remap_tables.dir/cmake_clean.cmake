file(REMOVE_RECURSE
  "CMakeFiles/test_remap_tables.dir/test_remap_tables.cc.o"
  "CMakeFiles/test_remap_tables.dir/test_remap_tables.cc.o.d"
  "test_remap_tables"
  "test_remap_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_remap_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
