# Empty dependencies file for test_remap_tables.
# This may be replaced when dependencies are built.
