file(REMOVE_RECURSE
  "CMakeFiles/test_dds.dir/test_dds.cc.o"
  "CMakeFiles/test_dds.dir/test_dds.cc.o.d"
  "test_dds"
  "test_dds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
