# Empty dependencies file for citadel_core.
# This may be replaced when dependencies are built.
