file(REMOVE_RECURSE
  "CMakeFiles/citadel_core.dir/citadel.cc.o"
  "CMakeFiles/citadel_core.dir/citadel.cc.o.d"
  "CMakeFiles/citadel_core.dir/dds.cc.o"
  "CMakeFiles/citadel_core.dir/dds.cc.o.d"
  "CMakeFiles/citadel_core.dir/parity_engine.cc.o"
  "CMakeFiles/citadel_core.dir/parity_engine.cc.o.d"
  "CMakeFiles/citadel_core.dir/remap_tables.cc.o"
  "CMakeFiles/citadel_core.dir/remap_tables.cc.o.d"
  "CMakeFiles/citadel_core.dir/three_d_parity.cc.o"
  "CMakeFiles/citadel_core.dir/three_d_parity.cc.o.d"
  "CMakeFiles/citadel_core.dir/tsv_swap.cc.o"
  "CMakeFiles/citadel_core.dir/tsv_swap.cc.o.d"
  "libcitadel_core.a"
  "libcitadel_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citadel_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
