file(REMOVE_RECURSE
  "libcitadel_core.a"
)
