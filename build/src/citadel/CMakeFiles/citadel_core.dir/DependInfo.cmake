
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/citadel/citadel.cc" "src/citadel/CMakeFiles/citadel_core.dir/citadel.cc.o" "gcc" "src/citadel/CMakeFiles/citadel_core.dir/citadel.cc.o.d"
  "/root/repo/src/citadel/dds.cc" "src/citadel/CMakeFiles/citadel_core.dir/dds.cc.o" "gcc" "src/citadel/CMakeFiles/citadel_core.dir/dds.cc.o.d"
  "/root/repo/src/citadel/parity_engine.cc" "src/citadel/CMakeFiles/citadel_core.dir/parity_engine.cc.o" "gcc" "src/citadel/CMakeFiles/citadel_core.dir/parity_engine.cc.o.d"
  "/root/repo/src/citadel/remap_tables.cc" "src/citadel/CMakeFiles/citadel_core.dir/remap_tables.cc.o" "gcc" "src/citadel/CMakeFiles/citadel_core.dir/remap_tables.cc.o.d"
  "/root/repo/src/citadel/three_d_parity.cc" "src/citadel/CMakeFiles/citadel_core.dir/three_d_parity.cc.o" "gcc" "src/citadel/CMakeFiles/citadel_core.dir/three_d_parity.cc.o.d"
  "/root/repo/src/citadel/tsv_swap.cc" "src/citadel/CMakeFiles/citadel_core.dir/tsv_swap.cc.o" "gcc" "src/citadel/CMakeFiles/citadel_core.dir/tsv_swap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/citadel_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stack/CMakeFiles/citadel_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/citadel_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/citadel_ecc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
