file(REMOVE_RECURSE
  "libcitadel_ecc.a"
)
