# Empty compiler generated dependencies file for citadel_ecc.
# This may be replaced when dependencies are built.
