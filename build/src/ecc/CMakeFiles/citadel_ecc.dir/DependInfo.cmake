
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ecc/baseline_schemes.cc" "src/ecc/CMakeFiles/citadel_ecc.dir/baseline_schemes.cc.o" "gcc" "src/ecc/CMakeFiles/citadel_ecc.dir/baseline_schemes.cc.o.d"
  "/root/repo/src/ecc/crc32.cc" "src/ecc/CMakeFiles/citadel_ecc.dir/crc32.cc.o" "gcc" "src/ecc/CMakeFiles/citadel_ecc.dir/crc32.cc.o.d"
  "/root/repo/src/ecc/gf256.cc" "src/ecc/CMakeFiles/citadel_ecc.dir/gf256.cc.o" "gcc" "src/ecc/CMakeFiles/citadel_ecc.dir/gf256.cc.o.d"
  "/root/repo/src/ecc/reed_solomon.cc" "src/ecc/CMakeFiles/citadel_ecc.dir/reed_solomon.cc.o" "gcc" "src/ecc/CMakeFiles/citadel_ecc.dir/reed_solomon.cc.o.d"
  "/root/repo/src/ecc/secded.cc" "src/ecc/CMakeFiles/citadel_ecc.dir/secded.cc.o" "gcc" "src/ecc/CMakeFiles/citadel_ecc.dir/secded.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/citadel_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stack/CMakeFiles/citadel_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/citadel_faults.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
