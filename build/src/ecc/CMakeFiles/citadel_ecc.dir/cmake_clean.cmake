file(REMOVE_RECURSE
  "CMakeFiles/citadel_ecc.dir/baseline_schemes.cc.o"
  "CMakeFiles/citadel_ecc.dir/baseline_schemes.cc.o.d"
  "CMakeFiles/citadel_ecc.dir/crc32.cc.o"
  "CMakeFiles/citadel_ecc.dir/crc32.cc.o.d"
  "CMakeFiles/citadel_ecc.dir/gf256.cc.o"
  "CMakeFiles/citadel_ecc.dir/gf256.cc.o.d"
  "CMakeFiles/citadel_ecc.dir/reed_solomon.cc.o"
  "CMakeFiles/citadel_ecc.dir/reed_solomon.cc.o.d"
  "CMakeFiles/citadel_ecc.dir/secded.cc.o"
  "CMakeFiles/citadel_ecc.dir/secded.cc.o.d"
  "libcitadel_ecc.a"
  "libcitadel_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citadel_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
