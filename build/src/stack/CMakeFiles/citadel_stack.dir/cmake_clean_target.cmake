file(REMOVE_RECURSE
  "libcitadel_stack.a"
)
