# Empty compiler generated dependencies file for citadel_stack.
# This may be replaced when dependencies are built.
