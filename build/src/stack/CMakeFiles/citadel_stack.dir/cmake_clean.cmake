file(REMOVE_RECURSE
  "CMakeFiles/citadel_stack.dir/address.cc.o"
  "CMakeFiles/citadel_stack.dir/address.cc.o.d"
  "CMakeFiles/citadel_stack.dir/geometry.cc.o"
  "CMakeFiles/citadel_stack.dir/geometry.cc.o.d"
  "CMakeFiles/citadel_stack.dir/tsv.cc.o"
  "CMakeFiles/citadel_stack.dir/tsv.cc.o.d"
  "libcitadel_stack.a"
  "libcitadel_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citadel_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
