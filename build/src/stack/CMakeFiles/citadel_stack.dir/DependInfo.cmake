
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stack/address.cc" "src/stack/CMakeFiles/citadel_stack.dir/address.cc.o" "gcc" "src/stack/CMakeFiles/citadel_stack.dir/address.cc.o.d"
  "/root/repo/src/stack/geometry.cc" "src/stack/CMakeFiles/citadel_stack.dir/geometry.cc.o" "gcc" "src/stack/CMakeFiles/citadel_stack.dir/geometry.cc.o.d"
  "/root/repo/src/stack/tsv.cc" "src/stack/CMakeFiles/citadel_stack.dir/tsv.cc.o" "gcc" "src/stack/CMakeFiles/citadel_stack.dir/tsv.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/citadel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
