file(REMOVE_RECURSE
  "libcitadel_sim.a"
)
