
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/llc.cc" "src/sim/CMakeFiles/citadel_sim.dir/llc.cc.o" "gcc" "src/sim/CMakeFiles/citadel_sim.dir/llc.cc.o.d"
  "/root/repo/src/sim/memory_system.cc" "src/sim/CMakeFiles/citadel_sim.dir/memory_system.cc.o" "gcc" "src/sim/CMakeFiles/citadel_sim.dir/memory_system.cc.o.d"
  "/root/repo/src/sim/power.cc" "src/sim/CMakeFiles/citadel_sim.dir/power.cc.o" "gcc" "src/sim/CMakeFiles/citadel_sim.dir/power.cc.o.d"
  "/root/repo/src/sim/system_sim.cc" "src/sim/CMakeFiles/citadel_sim.dir/system_sim.cc.o" "gcc" "src/sim/CMakeFiles/citadel_sim.dir/system_sim.cc.o.d"
  "/root/repo/src/sim/workload.cc" "src/sim/CMakeFiles/citadel_sim.dir/workload.cc.o" "gcc" "src/sim/CMakeFiles/citadel_sim.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/citadel_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stack/CMakeFiles/citadel_stack.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
