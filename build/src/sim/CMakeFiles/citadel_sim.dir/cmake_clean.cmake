file(REMOVE_RECURSE
  "CMakeFiles/citadel_sim.dir/llc.cc.o"
  "CMakeFiles/citadel_sim.dir/llc.cc.o.d"
  "CMakeFiles/citadel_sim.dir/memory_system.cc.o"
  "CMakeFiles/citadel_sim.dir/memory_system.cc.o.d"
  "CMakeFiles/citadel_sim.dir/power.cc.o"
  "CMakeFiles/citadel_sim.dir/power.cc.o.d"
  "CMakeFiles/citadel_sim.dir/system_sim.cc.o"
  "CMakeFiles/citadel_sim.dir/system_sim.cc.o.d"
  "CMakeFiles/citadel_sim.dir/workload.cc.o"
  "CMakeFiles/citadel_sim.dir/workload.cc.o.d"
  "libcitadel_sim.a"
  "libcitadel_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citadel_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
