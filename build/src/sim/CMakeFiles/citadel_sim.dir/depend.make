# Empty dependencies file for citadel_sim.
# This may be replaced when dependencies are built.
