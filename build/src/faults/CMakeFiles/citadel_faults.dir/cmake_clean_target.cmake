file(REMOVE_RECURSE
  "libcitadel_faults.a"
)
