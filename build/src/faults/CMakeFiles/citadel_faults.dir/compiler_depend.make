# Empty compiler generated dependencies file for citadel_faults.
# This may be replaced when dependencies are built.
