file(REMOVE_RECURSE
  "CMakeFiles/citadel_faults.dir/analysis.cc.o"
  "CMakeFiles/citadel_faults.dir/analysis.cc.o.d"
  "CMakeFiles/citadel_faults.dir/fault.cc.o"
  "CMakeFiles/citadel_faults.dir/fault.cc.o.d"
  "CMakeFiles/citadel_faults.dir/fit_rates.cc.o"
  "CMakeFiles/citadel_faults.dir/fit_rates.cc.o.d"
  "CMakeFiles/citadel_faults.dir/injector.cc.o"
  "CMakeFiles/citadel_faults.dir/injector.cc.o.d"
  "CMakeFiles/citadel_faults.dir/monte_carlo.cc.o"
  "CMakeFiles/citadel_faults.dir/monte_carlo.cc.o.d"
  "libcitadel_faults.a"
  "libcitadel_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citadel_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
