
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faults/analysis.cc" "src/faults/CMakeFiles/citadel_faults.dir/analysis.cc.o" "gcc" "src/faults/CMakeFiles/citadel_faults.dir/analysis.cc.o.d"
  "/root/repo/src/faults/fault.cc" "src/faults/CMakeFiles/citadel_faults.dir/fault.cc.o" "gcc" "src/faults/CMakeFiles/citadel_faults.dir/fault.cc.o.d"
  "/root/repo/src/faults/fit_rates.cc" "src/faults/CMakeFiles/citadel_faults.dir/fit_rates.cc.o" "gcc" "src/faults/CMakeFiles/citadel_faults.dir/fit_rates.cc.o.d"
  "/root/repo/src/faults/injector.cc" "src/faults/CMakeFiles/citadel_faults.dir/injector.cc.o" "gcc" "src/faults/CMakeFiles/citadel_faults.dir/injector.cc.o.d"
  "/root/repo/src/faults/monte_carlo.cc" "src/faults/CMakeFiles/citadel_faults.dir/monte_carlo.cc.o" "gcc" "src/faults/CMakeFiles/citadel_faults.dir/monte_carlo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/citadel_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stack/CMakeFiles/citadel_stack.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
