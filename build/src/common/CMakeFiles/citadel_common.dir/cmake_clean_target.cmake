file(REMOVE_RECURSE
  "libcitadel_common.a"
)
