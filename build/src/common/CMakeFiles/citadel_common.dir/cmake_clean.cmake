file(REMOVE_RECURSE
  "CMakeFiles/citadel_common.dir/env.cc.o"
  "CMakeFiles/citadel_common.dir/env.cc.o.d"
  "CMakeFiles/citadel_common.dir/log.cc.o"
  "CMakeFiles/citadel_common.dir/log.cc.o.d"
  "CMakeFiles/citadel_common.dir/rng.cc.o"
  "CMakeFiles/citadel_common.dir/rng.cc.o.d"
  "CMakeFiles/citadel_common.dir/stats.cc.o"
  "CMakeFiles/citadel_common.dir/stats.cc.o.d"
  "CMakeFiles/citadel_common.dir/table.cc.o"
  "CMakeFiles/citadel_common.dir/table.cc.o.d"
  "libcitadel_common.a"
  "libcitadel_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citadel_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
