# Empty dependencies file for citadel_common.
# This may be replaced when dependencies are built.
