
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_geometry.cc" "bench/CMakeFiles/ablation_geometry.dir/ablation_geometry.cc.o" "gcc" "bench/CMakeFiles/ablation_geometry.dir/ablation_geometry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/citadel/CMakeFiles/citadel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/citadel_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/citadel_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/citadel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stack/CMakeFiles/citadel_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/citadel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
