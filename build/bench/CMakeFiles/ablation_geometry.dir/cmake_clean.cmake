file(REMOVE_RECURSE
  "CMakeFiles/ablation_geometry.dir/ablation_geometry.cc.o"
  "CMakeFiles/ablation_geometry.dir/ablation_geometry.cc.o.d"
  "ablation_geometry"
  "ablation_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
