# Empty compiler generated dependencies file for fig14_3dp_resilience.
# This may be replaced when dependencies are built.
