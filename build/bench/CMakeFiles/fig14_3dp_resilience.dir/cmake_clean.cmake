file(REMOVE_RECURSE
  "CMakeFiles/fig14_3dp_resilience.dir/fig14_3dp_resilience.cc.o"
  "CMakeFiles/fig14_3dp_resilience.dir/fig14_3dp_resilience.cc.o.d"
  "fig14_3dp_resilience"
  "fig14_3dp_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_3dp_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
