# Empty compiler generated dependencies file for fig5_striping_perf_power.
# This may be replaced when dependencies are built.
