file(REMOVE_RECURSE
  "CMakeFiles/fig5_striping_perf_power.dir/fig5_striping_perf_power.cc.o"
  "CMakeFiles/fig5_striping_perf_power.dir/fig5_striping_perf_power.cc.o.d"
  "fig5_striping_perf_power"
  "fig5_striping_perf_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_striping_perf_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
