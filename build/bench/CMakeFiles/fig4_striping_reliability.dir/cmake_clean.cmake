file(REMOVE_RECURSE
  "CMakeFiles/fig4_striping_reliability.dir/fig4_striping_reliability.cc.o"
  "CMakeFiles/fig4_striping_reliability.dir/fig4_striping_reliability.cc.o.d"
  "fig4_striping_reliability"
  "fig4_striping_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_striping_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
