# Empty dependencies file for fig4_striping_reliability.
# This may be replaced when dependencies are built.
