file(REMOVE_RECURSE
  "CMakeFiles/fig16_power.dir/fig16_power.cc.o"
  "CMakeFiles/fig16_power.dir/fig16_power.cc.o.d"
  "fig16_power"
  "fig16_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
