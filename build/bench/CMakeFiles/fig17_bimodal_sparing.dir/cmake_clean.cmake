file(REMOVE_RECURSE
  "CMakeFiles/fig17_bimodal_sparing.dir/fig17_bimodal_sparing.cc.o"
  "CMakeFiles/fig17_bimodal_sparing.dir/fig17_bimodal_sparing.cc.o.d"
  "fig17_bimodal_sparing"
  "fig17_bimodal_sparing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_bimodal_sparing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
