# Empty dependencies file for fig17_bimodal_sparing.
# This may be replaced when dependencies are built.
