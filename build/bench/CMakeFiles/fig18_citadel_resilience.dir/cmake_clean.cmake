file(REMOVE_RECURSE
  "CMakeFiles/fig18_citadel_resilience.dir/fig18_citadel_resilience.cc.o"
  "CMakeFiles/fig18_citadel_resilience.dir/fig18_citadel_resilience.cc.o.d"
  "fig18_citadel_resilience"
  "fig18_citadel_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_citadel_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
