# Empty dependencies file for fig18_citadel_resilience.
# This may be replaced when dependencies are built.
