file(REMOVE_RECURSE
  "CMakeFiles/fig13_parity_cache.dir/fig13_parity_cache.cc.o"
  "CMakeFiles/fig13_parity_cache.dir/fig13_parity_cache.cc.o.d"
  "fig13_parity_cache"
  "fig13_parity_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_parity_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
