# Empty dependencies file for fig13_parity_cache.
# This may be replaced when dependencies are built.
