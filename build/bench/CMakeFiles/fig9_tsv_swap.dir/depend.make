# Empty dependencies file for fig9_tsv_swap.
# This may be replaced when dependencies are built.
