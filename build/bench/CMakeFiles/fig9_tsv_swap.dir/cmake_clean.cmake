file(REMOVE_RECURSE
  "CMakeFiles/fig9_tsv_swap.dir/fig9_tsv_swap.cc.o"
  "CMakeFiles/fig9_tsv_swap.dir/fig9_tsv_swap.cc.o.d"
  "fig9_tsv_swap"
  "fig9_tsv_swap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_tsv_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
