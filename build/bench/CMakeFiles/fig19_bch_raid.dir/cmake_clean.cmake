file(REMOVE_RECURSE
  "CMakeFiles/fig19_bch_raid.dir/fig19_bch_raid.cc.o"
  "CMakeFiles/fig19_bch_raid.dir/fig19_bch_raid.cc.o.d"
  "fig19_bch_raid"
  "fig19_bch_raid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_bch_raid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
