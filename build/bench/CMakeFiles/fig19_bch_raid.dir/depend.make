# Empty dependencies file for fig19_bch_raid.
# This may be replaced when dependencies are built.
