file(REMOVE_RECURSE
  "CMakeFiles/tab3_faulty_banks.dir/tab3_faulty_banks.cc.o"
  "CMakeFiles/tab3_faulty_banks.dir/tab3_faulty_banks.cc.o.d"
  "tab3_faulty_banks"
  "tab3_faulty_banks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_faulty_banks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
