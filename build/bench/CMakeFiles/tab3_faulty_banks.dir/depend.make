# Empty dependencies file for tab3_faulty_banks.
# This may be replaced when dependencies are built.
