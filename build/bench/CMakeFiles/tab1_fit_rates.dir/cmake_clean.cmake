file(REMOVE_RECURSE
  "CMakeFiles/tab1_fit_rates.dir/tab1_fit_rates.cc.o"
  "CMakeFiles/tab1_fit_rates.dir/tab1_fit_rates.cc.o.d"
  "tab1_fit_rates"
  "tab1_fit_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_fit_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
