# Empty compiler generated dependencies file for tab1_fit_rates.
# This may be replaced when dependencies are built.
